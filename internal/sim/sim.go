// Package sim is the exascale execution simulator: it plays out one run of
// an application protected by the multilevel checkpoint model, with
// periodic per-level checkpoints, randomly arriving failures whose rates
// grow with the execution scale, level-aware rollback, resource
// reallocation, and recovery — the stochastic counterpart of the analytic
// model in internal/model (Section IV-A of the paper).
//
// The paper's simulator is tick-driven (1 tick = 1 second); this one is
// event-driven in continuous time, which is statistically identical for
// exponential arrivals and orders of magnitude faster, letting the
// 100-run × 6-case × 4-solution sweeps of Figures 5–7 finish in seconds.
// A tick-driven twin (RunTicks) exists for the equivalence ablation.
//
// Semantics:
//
//   - Productive progress is measured in parallel seconds; the run
//     completes when progress reaches P = T_e/g(N).
//   - Level i schedules x_i − 1 checkpoints at equidistant progress marks.
//     When several levels are due at the same mark, only the highest level
//     checkpoints (its file can restore any lower-class failure).
//   - A class-c failure rolls execution back to the furthest completed
//     checkpoint of level ≥ c (or to the start), then pays the allocation
//     period A plus the class's recovery cost R_c(N).
//   - Failures can strike during checkpoints (the checkpoint aborts) and
//     during recovery (recovery restarts, possibly from an older
//     checkpoint if the new failure's class is higher).
//   - Checkpoint/recovery durations are jittered by a uniform relative
//     error (the paper uses up to 30%).
package sim

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/obs"
	"mlckpt/internal/stats"
)

// ErrConfig is returned for invalid simulation configurations.
var ErrConfig = errors.New("sim: invalid configuration")

// Config describes one simulated execution.
type Config struct {
	Params *model.Params // application + checkpoint levels + failure rates
	N      float64       // execution scale (cores)
	X      []float64     // interval counts per level; x_i = 1 means no checkpoints at level i

	JitterRatio  float64              // relative jitter on overheads (paper: up to 0.3)
	Dist         failure.Distribution // interarrival law (default exponential)
	WeibullShape float64              // shape when Dist == Weibull

	// MaxWallClock truncates pathological runs (e.g. single-level
	// checkpointing at full scale under high failure rates, where expected
	// completion time is years). Zero means 20x the analytic-model-free
	// bound of 4000 days.
	MaxWallClock float64

	// DisableFailuresDuringCkpt / ...Recovery suppress failures inside the
	// respective windows, for the ablation mirroring the paper's
	// simplifying assumption (footnote to Formula 5: failure-over-recovery
	// is rare and ignored by the model, but the simulator covers it).
	DisableFailuresDuringCkpt     bool
	DisableFailuresDuringRecovery bool

	// SilentCorruptionProb, when positive, silently corrupts each completed
	// checkpoint with this probability: the corruption is invisible until a
	// rollback tries to restore from the file, at which point verify-on-
	// restore rejects it, the run pays that level's recovery cost as
	// detection latency, and recovery escalates to the next-best intact
	// checkpoint (possibly from scratch). This is the simulator counterpart
	// of the fault-injection harness in internal/inject: silent errors are
	// a failure class the analytic model cannot see, because their cost is
	// only realized on the recovery path. Zero (the default) draws no RNG
	// values, so existing seeded runs are byte-identical.
	SilentCorruptionProb float64

	// CorrelationWindow, when positive, merges failures of class ≤ c that
	// arrive within this many seconds of a class-c failure into that
	// event: they are counted as absorbed and trigger no additional
	// rollback or recovery. This models the paper's footnote 1
	// (simultaneous failures within a 1–2 minute correlated window count
	// as one event).
	CorrelationWindow float64

	// RecordEvents captures a full execution trace in Result.Events.
	RecordEvents bool

	// Replay, when non-nil, feeds failures from this fixed trace (sorted
	// by time) instead of sampling the stochastic process — for replaying
	// a recorded run or a real system's failure log deterministically.
	// Rates in Params are ignored for arrival times; events with a level
	// beyond the configured hierarchy are clamped to the top class.
	Replay []failure.Event

	// Obs receives run counters (failures, checkpoints, truncations,
	// wall-clock histograms — all deterministic functions of the seeded
	// run) and, when ObsTrack is also set, checkpoint/recovery/failure
	// spans on the run's virtual clock. Nil disables instrumentation.
	Obs obs.Recorder `json:"-"`
	// ObsTrack names the trace track of this run. It must derive from
	// the run's content (scenario, policy, cache key) so traces are
	// identical for every worker count; empty suppresses spans while
	// keeping counters.
	ObsTrack string `json:"-"`
	// ObsMaxEvents bounds the trace events one run may emit: an optimized
	// exascale run takes tens of thousands of checkpoints, which would
	// swamp any timeline viewer. After the budget a single
	// "trace-truncated" instant marks the cut. The cut is count-based, so
	// it is as deterministic as the events themselves. 0 means 1000;
	// negative means unlimited.
	ObsMaxEvents int `json:"-"`
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Params == nil {
		return fmt.Errorf("%w: nil params", ErrConfig)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.N <= 0 {
		return fmt.Errorf("%w: scale %g", ErrConfig, c.N)
	}
	if len(c.X) != c.Params.L() {
		return fmt.Errorf("%w: %d interval counts for %d levels", ErrConfig, len(c.X), c.Params.L())
	}
	for i, x := range c.X {
		if x < 1 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: x_%d = %g", ErrConfig, i+1, x)
		}
	}
	if c.JitterRatio < 0 || c.JitterRatio >= 1 {
		return fmt.Errorf("%w: jitter ratio %g", ErrConfig, c.JitterRatio)
	}
	if c.SilentCorruptionProb < 0 || c.SilentCorruptionProb > 1 {
		return fmt.Errorf("%w: silent corruption probability %g", ErrConfig, c.SilentCorruptionProb)
	}
	return nil
}

// Result is the outcome of one simulated run. The four time portions are
// the paper's Figure 5 decomposition; they sum to WallClock.
type Result struct {
	WallClock  float64 // total seconds from launch to completion
	Productive float64 // first-time useful work (≈ T_e/g(N))
	Checkpoint float64 // first-time checkpoint overhead
	Restart    float64 // allocation + recovery time
	Rollback   float64 // re-executed work, re-taken and aborted checkpoints

	Failures         []int // failures observed per level class
	CheckpointsTaken []int // completed checkpoints per level (incl. re-taken)
	Absorbed         int   // failures merged into a correlated window
	SilentCorrupted  int   // checkpoints silently corrupted at completion
	SilentDetected   int   // corruptions caught by verify-on-restore (each cost detection latency)
	Truncated        bool  // MaxWallClock hit before completion

	Events []TraceEvent // populated when Config.RecordEvents is set
}

// TotalFailures sums the per-class failure counts.
func (r Result) TotalFailures() int {
	t := 0
	for _, v := range r.Failures {
		t += v
	}
	return t
}

// Efficiency returns the wall-clock efficiency of the run for a workload of
// te single-core seconds.
func (r Result) Efficiency(te, n float64) float64 {
	return model.Efficiency(te, r.WallClock, n)
}

// Run simulates one execution with the given RNG.
func Run(cfg Config, rng *stats.RNG) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	p := cfg.Params
	L := p.L()
	n := cfg.N
	P := p.ProductiveTime(n)
	if math.IsInf(P, 0) || P <= 0 {
		return Result{}, fmt.Errorf("%w: productive time %g at N=%g", ErrConfig, P, n)
	}
	maxWall := cfg.MaxWallClock
	if maxWall <= 0 {
		maxWall = 4000 * failure.SecondsPerDay * 20
	}

	// Per-level state lives in two slabs (one float64, one int) instead of
	// six separate slices: sweeps run this function millions of times, so
	// the fixed per-call allocation count matters. The two slices returned
	// inside Result get their capacity clipped so an appending caller can
	// never spill into a neighboring slab region.
	floats := make([]float64, 3*L)
	ints := make([]int, 3*L)

	// Per-level checkpoint period in progress seconds.
	tau := floats[0*L : 1*L]
	nextMark := ints[0*L : 1*L] // next interval index to checkpoint (1..x_i-1)
	for i := range tau {
		tau[i] = P / cfg.X[i]
		nextMark[i] = 1
	}
	markProgress := func(i int) float64 {
		if float64(nextMark[i]) >= cfg.X[i]-1e-9 {
			return math.Inf(1) // no checkpoint at the very end of the run
		}
		return float64(nextMark[i]) * tau[i]
	}

	res := Result{
		Failures:         ints[1*L : 2*L : 2*L],
		CheckpointsTaken: ints[2*L : 3*L : 3*L],
	}
	lastCkpt := floats[1*L : 2*L]     // progress of newest completed ckpt per level (0 = start)
	furthestCkpt := floats[2*L : 3*L] // furthest progress ever checkpointed per level
	for i := range furthestCkpt {
		furthestCkpt[i] = -1
	}

	// corrupt[i] marks the newest level-i checkpoint as silently damaged.
	// Allocated (and RNG consulted) only when the silent-error class is
	// enabled, so default-config runs keep their exact draw sequence.
	var corrupt []bool
	if cfg.SilentCorruptionProb > 0 {
		corrupt = make([]bool, L)
	}

	// Failure source: a stochastic process by default, or a fixed replay
	// trace (recorded from another run, or imported from a real system's
	// failure log).
	var draw func(from float64) (failure.Event, bool)
	if cfg.Replay != nil {
		idx := 0
		trace := cfg.Replay
		draw = func(from float64) (failure.Event, bool) {
			if idx >= len(trace) {
				return failure.Event{}, false
			}
			ev := trace[idx]
			idx++
			if ev.Level < 0 || ev.Level >= L {
				// Clamp foreign traces with more classes than levels.
				ev.Level = L - 1
			}
			if ev.Time < from {
				ev.Time = from
			}
			return ev, true
		}
	} else {
		proc := failure.NewProcess(p.Rates, n, cfg.Dist, cfg.WeibullShape, rng)
		draw = proc.Next
	}
	var pendingFail failure.Event
	havePending := false
	nextFailure := func(from float64) (failure.Event, bool) {
		if havePending {
			if pendingFail.Time < from {
				pendingFail.Time = from
			}
			return pendingFail, true
		}
		ev, ok := draw(from)
		if ok {
			pendingFail, havePending = ev, true
		}
		return ev, ok
	}
	consumeFailure := func() { havePending = false }

	wall := 0.0     // wall-clock seconds
	progress := 0.0 // parallel productive seconds completed
	furthest := 0.0 // furthest progress ever reached

	record := func(kind EventKind, level int) {
		if cfg.RecordEvents {
			res.Events = append(res.Events, TraceEvent{Time: wall, Kind: kind, Level: level, Progress: progress})
		}
	}

	// Telemetry: spans live on the run's virtual clock (wall), so the
	// exported trace is a pure function of (cfg, rng seed) — identical
	// bytes for any worker count. Tracing is gated on ObsTrack because a
	// 100-run batch only traces its first run (see RunMany), and bounded
	// by ObsMaxEvents so checkpoint-heavy runs cannot flood the timeline.
	rec := obs.OrNop(cfg.Obs)
	budget := 0
	if cfg.ObsTrack != "" {
		budget = cfg.ObsMaxEvents
		if budget == 0 {
			budget = 1000
		}
	}
	truncatedTrace := false
	tracing := func() bool {
		if cfg.ObsTrack == "" {
			return false
		}
		if budget != 0 {
			if budget > 0 {
				budget--
			}
			return true
		}
		if !truncatedTrace {
			truncatedTrace = true
			rec.Count("sim.trace_truncated", 1)
			rec.Instant(cfg.ObsTrack, "trace-truncated", wall, nil)
		}
		return false
	}
	failureInstant := func(class int) {
		if tracing() {
			rec.Instant(cfg.ObsTrack, "failure", wall, map[string]float64{
				"class": float64(class + 1), "progress": progress,
			})
		}
	}

	// strike applies the storage damage and rollback of a class-c failure:
	// checkpoints below level c are destroyed (their storage died with the
	// failure), and execution restores to the furthest checkpoint of level
	// ≥ c (all of which lie at or before that point by construction). It
	// returns the level restored from — the cheapest level holding the
	// restore point — or -1 when execution restarts from scratch.
	strike := func(c int) int {
		// Verify-on-restore: reject corrupted checkpoints before trusting
		// the restore point. Each rejection pays the rejected level's
		// recovery cost as detection latency (the read that found the bad
		// checksum) and escalates to the next-best intact file — the sim
		// counterpart of fti.RestoreEscalating.
		if corrupt != nil {
			for {
				best, q := -1, 0.0
				for i := c; i < L; i++ {
					if lastCkpt[i] > q {
						best, q = i, lastCkpt[i]
					}
				}
				if best < 0 || !corrupt[best] {
					break
				}
				pen := rng.Jitter(p.Levels[best].Recovery.At(n), cfg.JitterRatio)
				if tracing() {
					rec.Span(cfg.ObsTrack, "silent-detect", wall, pen, map[string]float64{
						"level": float64(best + 1),
					})
				}
				wall += pen
				res.Restart += pen
				res.SilentDetected++
				lastCkpt[best] = 0
				corrupt[best] = false
				record(EvSilentDetect, best)
			}
		}
		q := 0.0
		for i := c; i < L; i++ {
			if lastCkpt[i] > q {
				q = lastCkpt[i]
			}
		}
		for i := 0; i < c; i++ {
			lastCkpt[i] = 0
			if corrupt != nil {
				corrupt[i] = false
			}
		}
		if q < progress {
			progress = q
		}
		for i := range nextMark {
			nextMark[i] = int(progress/tau[i]+1e-9) + 1
		}
		if q <= 0 {
			return -1
		}
		for i := c; i < L; i++ {
			//lint:allow floateq q and lastCkpt[i] are the same stored value when they match (assigned from one expression), so exact identity is the correct test
			if lastCkpt[i] == q {
				return i
			}
		}
		return -1
	}

	// handleFailure processes a class-c failure at the current wall time:
	// rollback, allocation, recovery, and any failures during recovery.
	// The recovery overhead charged is the RESTORING level's, not the
	// failure class's: a class-1 fault in a PFS-only deployment still pays
	// the PFS read — which is what makes the single-level baselines
	// collapse at scale (the paper's ~890-day SL(ori-scale) in Table IV).
	handleFailure := func(c int) {
		res.Failures[c]++
		record(EvFailure, c)
		failureInstant(c)
		restoreLvl := strike(c)
		rollbackInstant := func() {
			if tracing() {
				rec.Instant(cfg.ObsTrack, "rollback", wall, map[string]float64{
					"to": progress, "restore_level": float64(restoreLvl + 1),
				})
			}
		}
		rollbackInstant()
		// Correlated-window merge (paper footnote 1): failures of class
		// ≤ c arriving within the window belong to this event.
		if cfg.CorrelationWindow > 0 {
			for {
				ev, ok := nextFailure(wall)
				if !ok || ev.Time > wall+cfg.CorrelationWindow || ev.Level > c {
					break
				}
				consumeFailure()
				res.Absorbed++
				record(EvAbsorbedFailure, ev.Level)
				if tracing() {
					rec.Instant(cfg.ObsTrack, "failure-absorbed", ev.Time, map[string]float64{
						"class": float64(ev.Level + 1),
					})
				}
			}
		}
		// Allocation + recovery, restarting on failures inside the window.
		for {
			dur := p.Alloc
			if restoreLvl >= 0 {
				dur += rng.Jitter(p.Levels[restoreLvl].Recovery.At(n), cfg.JitterRatio)
			}
			if cfg.DisableFailuresDuringRecovery {
				if tracing() {
					rec.Span(cfg.ObsTrack, "recovery", wall, dur, map[string]float64{
						"restore_level": float64(restoreLvl + 1),
					})
				}
				wall += dur
				res.Restart += dur
				record(EvRecoveryDone, restoreLvl)
				return
			}
			ev, ok := nextFailure(wall)
			if !ok || ev.Time >= wall+dur {
				if tracing() {
					rec.Span(cfg.ObsTrack, "recovery", wall, dur, map[string]float64{
						"restore_level": float64(restoreLvl + 1),
					})
				}
				wall += dur
				res.Restart += dur
				record(EvRecoveryDone, restoreLvl)
				return
			}
			// Failure during recovery: the elapsed slice still counts as
			// restart time; recovery begins again, possibly from an older
			// checkpoint if the new class is higher.
			consumeFailure()
			if tracing() {
				rec.Span(cfg.ObsTrack, "recovery-abort", wall, ev.Time-wall, map[string]float64{
					"restore_level": float64(restoreLvl + 1),
				})
			}
			res.Restart += ev.Time - wall
			wall = ev.Time
			res.Failures[ev.Level]++
			record(EvFailure, ev.Level)
			failureInstant(ev.Level)
			if ev.Level > c {
				c = ev.Level
			}
			restoreLvl = strike(c)
			rollbackInstant()
		}
	}

	for progress < P {
		if wall > maxWall {
			res.Truncated = true
			break
		}
		// Next due checkpoint mark: the earliest mark over levels; at equal
		// marks the HIGHEST level wins and lower ones are skipped.
		dueProgress := math.Inf(1)
		dueLevel := -1
		for i := L - 1; i >= 0; i-- {
			m := markProgress(i)
			if m < dueProgress-1e-9 {
				dueProgress, dueLevel = m, i
			} else if m < dueProgress+1e-9 && i > dueLevel {
				dueLevel = i
			}
		}
		segEnd := math.Min(dueProgress, P)

		// --- Productive segment [progress, segEnd) ---
		segDur := segEnd - progress
		if segDur > 0 {
			ev, ok := nextFailure(wall)
			if ok && ev.Time < wall+segDur {
				// Failure mid-segment.
				consumeFailure()
				ran := ev.Time - wall
				advanceWork(&res, progress, progress+ran, furthest)
				progress += ran
				if progress > furthest {
					furthest = progress
				}
				wall = ev.Time
				handleFailure(ev.Level)
				continue
			}
			advanceWork(&res, progress, segEnd, furthest)
			wall += segDur
			progress = segEnd
			if progress > furthest {
				furthest = progress
			}
		}
		if progress >= P {
			break
		}

		// --- Checkpoint at dueProgress, level dueLevel ---
		dur := rng.Jitter(p.Levels[dueLevel].Checkpoint.At(n), cfg.JitterRatio)
		redo := progress <= furthestCkpt[dueLevel]+1e-9
		ev, ok := failure.Event{}, false
		if !cfg.DisableFailuresDuringCkpt {
			ev, ok = nextFailure(wall)
		}
		if ok && ev.Time < wall+dur {
			// Checkpoint aborted by a failure: elapsed time is wasted.
			consumeFailure()
			wasted := ev.Time - wall
			if redo {
				res.Rollback += wasted
			} else {
				res.Checkpoint += wasted
			}
			if tracing() {
				redoArg := 0.0
				if redo {
					redoArg = 1
				}
				rec.Span(cfg.ObsTrack, "checkpoint-abort", wall, wasted, map[string]float64{
					"level": float64(dueLevel + 1), "progress": progress, "redo": redoArg,
				})
			}
			wall = ev.Time
			record(EvCheckpointAbort, dueLevel)
			handleFailure(ev.Level)
			continue
		}
		if tracing() {
			redoArg := 0.0
			if redo {
				redoArg = 1
			}
			rec.Span(cfg.ObsTrack, "checkpoint", wall, dur, map[string]float64{
				"level": float64(dueLevel + 1), "progress": progress, "redo": redoArg,
			})
		}
		wall += dur
		if redo {
			res.Rollback += dur
		} else {
			res.Checkpoint += dur
		}
		record(EvCheckpointDone, dueLevel)
		res.CheckpointsTaken[dueLevel]++
		lastCkpt[dueLevel] = progress
		if corrupt != nil {
			bad := rng.Float64() < cfg.SilentCorruptionProb
			corrupt[dueLevel] = bad
			if bad {
				res.SilentCorrupted++
			}
		}
		if progress > furthestCkpt[dueLevel] {
			furthestCkpt[dueLevel] = progress
		}
		// Advance the mark of this level and skip any lower-level mark due
		// at the same progress point: the higher-level file restores those
		// failure classes too (the restore lookup scans all levels ≥ c),
		// so a separate lower-level checkpoint there would be pure waste.
		for i := 0; i <= dueLevel; i++ {
			if m := markProgress(i); !math.IsInf(m, 1) && m < progress+1e-9 {
				nextMark[i]++
			}
		}
	}

	res.WallClock = wall
	record(EvCompletion, -1)
	if tracing() {
		rec.Instant(cfg.ObsTrack, "complete", wall, map[string]float64{"progress": progress})
	}
	rec.Count("sim.runs", 1)
	rec.Count("sim.failures", int64(res.TotalFailures()))
	ckpts := 0
	for _, v := range res.CheckpointsTaken {
		ckpts += v
	}
	rec.Count("sim.checkpoints", int64(ckpts))
	if res.SilentCorrupted > 0 {
		rec.Count("sim.silent_corrupted", int64(res.SilentCorrupted))
	}
	if res.SilentDetected > 0 {
		rec.Count("sim.silent_detected", int64(res.SilentDetected))
	}
	if res.Truncated {
		rec.Count("sim.truncated", 1)
	}
	rec.Observe("sim.wallclock_days", wall/failure.SecondsPerDay)
	return res, nil
}

// advanceWork attributes a slice of executed work [from, to) to Productive
// (first-time) or Rollback (re-execution) based on the furthest progress
// previously reached.
//
//mlckpt:hotpath
func advanceWork(res *Result, from, to, furthest float64) {
	if to <= from {
		return
	}
	if from >= furthest {
		res.Productive += to - from
		return
	}
	if to <= furthest {
		res.Rollback += to - from
		return
	}
	res.Rollback += furthest - from
	res.Productive += to - furthest
}
