package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mlckpt/internal/obs"
)

func TestRunManyTracesOnlyFirstRun(t *testing.T) {
	col := obs.NewCollector()
	cfg := testConfig("4-3-2-1", 5000, []float64{40, 20, 10, 5})
	cfg.Obs = col
	cfg.ObsTrack = "sim/test"
	results, err := RunMany(cfg, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	// Only run 0 emits spans (a per-run timeline for every repetition
	// would be unreadable and enormous); counters cover all runs.
	if tracks := col.Trace.Tracks(); !reflect.DeepEqual(tracks, []string{"sim/test"}) {
		t.Errorf("tracks = %v, want [sim/test]", tracks)
	}
	if col.Trace.Len() == 0 {
		t.Error("run 0 emitted no trace events")
	}
	snap := col.Registry.Snapshot()
	if n, _ := snap.Counter("sim.runs"); n != 5 {
		t.Errorf("sim.runs = %d, want 5", n)
	}
	var ckpts int64
	for _, r := range results {
		for _, c := range r.CheckpointsTaken {
			ckpts += int64(c)
		}
	}
	if n, _ := snap.Counter("sim.checkpoints"); n != ckpts {
		t.Errorf("sim.checkpoints = %d, want %d (sum over results)", n, ckpts)
	}
}

func TestObsMaxEventsTruncates(t *testing.T) {
	col := obs.NewCollector()
	cfg := testConfig("4-3-2-1", 5000, []float64{40, 20, 10, 5})
	cfg.Obs = col
	cfg.ObsTrack = "sim/budget"
	cfg.ObsMaxEvents = 3
	if _, err := RunMany(cfg, 1, 7); err != nil {
		t.Fatal(err)
	}
	if n, _ := col.Registry.Snapshot().Counter("sim.trace_truncated"); n != 1 {
		t.Errorf("sim.trace_truncated = %d, want 1", n)
	}
	data, err := json.Marshal(col.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "trace-truncated") {
		t.Error("trace lacks the trace-truncated marker instant")
	}
	// Budget is counted in events, not wall time, so truncation itself is
	// deterministic: 3 allowed events + the marker.
	if got := col.Trace.Len(); got != 4 {
		t.Errorf("trace has %d events, want 4 (budget 3 + truncation marker)", got)
	}
}

func TestNilRecorderLeavesResultsUnchanged(t *testing.T) {
	cfg := testConfig("4-3-2-1", 5000, []float64{40, 20, 10, 5})
	plain, err := RunMany(cfg, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewCollector()
	cfg.ObsTrack = "sim/observed"
	observed, err := RunMany(cfg, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("simulation results change when a Recorder is attached")
	}
}
