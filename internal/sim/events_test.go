package sim

import (
	"strings"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/stats"
	"mlckpt/internal/trace"
)

func TestRecordedTraceOrderingAndCounts(t *testing.T) {
	cfg := testConfig("24-12-6-3", 8000, []float64{60, 30, 12, 6})
	cfg.RecordEvents = true
	r, err := Run(cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) == 0 {
		t.Fatal("no events recorded")
	}
	// Monotone in time.
	for i := 1; i < len(r.Events); i++ {
		if r.Events[i].Time < r.Events[i-1].Time-1e-9 {
			t.Fatalf("events out of order at %d: %v after %v", i, r.Events[i], r.Events[i-1])
		}
	}
	// Counts must match the scalar counters.
	failures, ckpts := 0, 0
	for _, e := range r.Events {
		switch e.Kind {
		case EvFailure:
			failures++
		case EvCheckpointDone:
			ckpts++
		}
	}
	if failures != r.TotalFailures() {
		t.Errorf("trace failures %d != counter %d", failures, r.TotalFailures())
	}
	total := 0
	for _, c := range r.CheckpointsTaken {
		total += c
	}
	if ckpts != total {
		t.Errorf("trace checkpoints %d != counter %d", ckpts, total)
	}
	// Ends with completion.
	if last := r.Events[len(r.Events)-1]; last.Kind != EvCompletion {
		t.Errorf("last event %v, want completion", last)
	}
	// Every failure is followed (eventually) by a recovery event.
	recoveries := 0
	for _, e := range r.Events {
		if e.Kind == EvRecoveryDone {
			recoveries++
		}
	}
	if recoveries == 0 && failures > 0 {
		t.Error("failures recorded but no recovery events")
	}
}

func TestRecordingOffByDefault(t *testing.T) {
	cfg := testConfig("24-12-6-3", 8000, []float64{60, 30, 12, 6})
	r, err := Run(cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != nil {
		t.Error("events recorded without RecordEvents")
	}
}

func TestCorrelationWindowAbsorbsFailures(t *testing.T) {
	// Very high class-4 rate with a wide window: many events should fold
	// into each strike, reducing the effective failure count.
	base := testConfig("0-0-0-200", 1e4, []float64{1, 1, 1, 40})
	base.Params.Te = 2000 * 86400 // long run: P ≈ 160 MTBFs, many strikes
	plain, err := Run(base, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	corr := base
	corr.CorrelationWindow = 120
	merged, err := Run(corr, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Absorbed == 0 {
		t.Fatal("no failures absorbed despite a 2-minute window at 200/day")
	}
	if plain.Absorbed != 0 {
		t.Error("absorption without a window")
	}
	// Treating a burst as one event can only reduce recovery work.
	if merged.Restart > plain.Restart*1.1 {
		t.Errorf("windowed restart %g > plain %g", merged.Restart, plain.Restart)
	}
}

func TestCorrelationWindowDoesNotAbsorbHigherClass(t *testing.T) {
	// A higher-class failure inside the window must NOT be swallowed: it
	// needs its own (deeper) recovery.
	cfg := testConfig("2000-0-0-2000", 1e4, []float64{100, 1, 1, 10})
	cfg.CorrelationWindow = 300
	cfg.Params.Te = 500 * 86400
	cfg.MaxWallClock = 50 * 86400
	r, err := Run(cfg, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures[3] == 0 {
		t.Error("class-4 failures all disappeared; higher classes must survive the window")
	}
}

func TestEventStrings(t *testing.T) {
	kinds := []EventKind{EvFailure, EvAbsorbedFailure, EvCheckpointDone, EvCheckpointAbort, EvRecoveryDone, EvCompletion}
	for _, k := range kinds {
		if s := k.String(); s == "" || strings.HasPrefix(s, "event(") {
			t.Errorf("kind %d renders as %q", k, s)
		}
	}
	e := TraceEvent{Time: 12.3, Kind: EvFailure, Level: 2, Progress: 100}
	if s := e.String(); !strings.Contains(s, "failure") || !strings.Contains(s, "L3") {
		t.Errorf("event string %q", s)
	}
}

func TestRecordedTraceFeedsTraceAnalysis(t *testing.T) {
	// The simulator's recorded failure events must have the statistics the
	// trace package expects: per-level rates proportional to the input.
	cfg := testConfig("24-12-6-3", 1e4, []float64{200, 100, 40, 20})
	cfg.Params.Te = 2000 * 86400
	cfg.RecordEvents = true
	r, err := Run(cfg, stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	var events []failure.Event
	for _, e := range r.Events {
		if e.Kind == EvFailure {
			events = append(events, failure.Event{Time: e.Time, Level: e.Level})
		}
	}
	st, err := trace.Analyze(events, 4, r.WallClock)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{24, 12, 6, 3} {
		if st[i].Count < 10 {
			continue // too few events for a rate assertion
		}
		if st[i].RatePerDay < 0.6*want || st[i].RatePerDay > 1.4*want {
			t.Errorf("level %d: %.2f failures/day, want ≈%g", i+1, st[i].RatePerDay, want)
		}
	}
	// The dominant level's interarrivals look exponential.
	if st[0].Count >= 30 && !st[0].LooksExponential(0.3) {
		t.Errorf("level-1 interarrivals CV=%g not exponential-like", st[0].CV)
	}
}
