package sim

import (
	"fmt"
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/stats"
)

// runTicksDense is the original tick-by-tick loop: every simulated tick is
// one loop iteration, whether or not anything interesting happens in it.
// It is kept verbatim as the differential oracle for the jump engine in
// RunTicks — TestTickJumpMatchesDense replays both over shared seeds and
// demands identical outcomes. Do not "fix" or optimize this function; its
// value is that it is the trivially-auditable reference semantics.
func runTicksDense(cfg Config, tick float64, rng *stats.RNG) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.SilentCorruptionProb > 0 {
		// The tick twin exists only for the event-vs-tick equivalence
		// ablation, which predates the silent-error class; fail loudly
		// rather than silently dropping injected corruption.
		return Result{}, fmt.Errorf("%w: RunTicks does not support silent-error injection", ErrConfig)
	}
	if tick <= 0 {
		tick = 1
	}
	p := cfg.Params
	L := p.L()
	n := cfg.N
	P := p.ProductiveTime(n)
	maxWall := cfg.MaxWallClock
	if maxWall <= 0 {
		maxWall = 4000 * failure.SecondsPerDay * 20
	}

	tau := make([]float64, L)
	for i := range tau {
		tau[i] = P / cfg.X[i]
	}

	res := Result{Failures: make([]int, L), CheckpointsTaken: make([]int, L)}
	lastCkpt := make([]float64, L)
	furthestCkpt := make([]float64, L)
	for i := range furthestCkpt {
		furthestCkpt[i] = -1
	}
	nextMark := make([]int, L)
	for i := range nextMark {
		nextMark[i] = 1
	}
	markProgress := func(i int) float64 {
		if float64(nextMark[i]) >= cfg.X[i]-1e-9 {
			return math.Inf(1)
		}
		return float64(nextMark[i]) * tau[i]
	}

	proc := failure.NewProcess(p.Rates, n, cfg.Dist, cfg.WeibullShape, rng)
	pending, havePending := failure.Event{}, false
	peek := func(from float64) (failure.Event, bool) {
		if !havePending {
			ev, ok := proc.Next(from)
			if !ok {
				return failure.Event{}, false
			}
			pending, havePending = ev, true
		}
		if pending.Time < from {
			pending.Time = from
		}
		return pending, true
	}

	wall, progress, furthest := 0.0, 0.0, 0.0

	// Mode state machine: working, checkpointing (level, remaining),
	// recovering (class, remaining).
	const (
		working = iota
		checkpointing
		recovering
	)
	mode := working
	var remaining float64
	var ckptLevel int
	var recClass int
	var ckptRedo bool

	// strike mirrors the event engine: it applies storage damage and
	// rollback, returning the restoring level (-1 = from scratch).
	strike := func(c int) int {
		q := 0.0
		for i := c; i < L; i++ {
			if lastCkpt[i] > q {
				q = lastCkpt[i]
			}
		}
		for i := 0; i < c; i++ {
			lastCkpt[i] = 0
		}
		if q < progress {
			progress = q
		}
		for i := range nextMark {
			nextMark[i] = int(progress/tau[i]+1e-9) + 1
		}
		if q <= 0 {
			return -1
		}
		for i := c; i < L; i++ {
			//lint:allow floateq q and lastCkpt[i] are the same stored value when they match (assigned from one expression), so exact identity is the correct test
			if lastCkpt[i] == q {
				return i
			}
		}
		return -1
	}
	recoveryDur := func(restoreLvl int) float64 {
		dur := p.Alloc
		if restoreLvl >= 0 {
			dur += rng.Jitter(p.Levels[restoreLvl].Recovery.At(n), cfg.JitterRatio)
		}
		return dur
	}

	for progress < P && wall <= maxWall {
		// Failure at this tick?
		failed := false
		var failClass int
		suppress := (mode == checkpointing && cfg.DisableFailuresDuringCkpt) ||
			(mode == recovering && cfg.DisableFailuresDuringRecovery)
		if ev, ok := peek(wall); ok && ev.Time < wall+tick && !suppress {
			havePending = false
			failed = true
			failClass = ev.Level
		}

		switch mode {
		case working:
			if failed {
				// The partial tick before the failure still progresses.
				res.Failures[failClass]++
				lvl := strike(failClass)
				mode = recovering
				recClass = failClass
				remaining = recoveryDur(lvl)
				wall += tick
				res.Restart += tick
				continue
			}
			// Work until the next checkpoint mark or completion.
			due := math.Inf(1)
			dueLevel := -1
			for i := L - 1; i >= 0; i-- {
				if m := markProgress(i); m < due-1e-9 {
					due, dueLevel = m, i
				} else if m < due+1e-9 && i > dueLevel {
					dueLevel = i
				}
			}
			step := math.Min(tick, math.Min(due, P)-progress)
			if step < 0 {
				step = 0
			}
			advanceWork(&res, progress, progress+step, furthest)
			progress += step
			if progress > furthest {
				furthest = progress
			}
			wall += tick
			if progress >= math.Min(due, P)-1e-9 && progress < P {
				mode = checkpointing
				ckptLevel = dueLevel
				ckptRedo = progress <= furthestCkpt[dueLevel]+1e-9
				remaining = rng.Jitter(p.Levels[dueLevel].Checkpoint.At(n), cfg.JitterRatio)
			}
		case checkpointing:
			spent := math.Min(tick, remaining)
			if ckptRedo {
				res.Rollback += spent
			} else {
				res.Checkpoint += spent
			}
			wall += tick
			if failed {
				res.Failures[failClass]++
				lvl := strike(failClass)
				mode = recovering
				recClass = failClass
				remaining = recoveryDur(lvl)
				continue
			}
			remaining -= tick
			if remaining <= 0 {
				res.CheckpointsTaken[ckptLevel]++
				lastCkpt[ckptLevel] = progress
				if progress > furthestCkpt[ckptLevel] {
					furthestCkpt[ckptLevel] = progress
				}
				for i := 0; i <= ckptLevel; i++ {
					if m := markProgress(i); !math.IsInf(m, 1) && m < progress+1e-9 {
						nextMark[i]++
					}
				}
				mode = working
			}
		case recovering:
			res.Restart += math.Min(tick, remaining)
			wall += tick
			if failed {
				res.Failures[failClass]++
				if failClass > recClass {
					recClass = failClass
				}
				lvl := strike(recClass)
				remaining = recoveryDur(lvl)
				continue
			}
			remaining -= tick
			if remaining <= 0 {
				mode = working
			}
		}
	}
	if progress < P {
		res.Truncated = true
	}
	res.WallClock = wall
	return res, nil
}
