package sim

import "fmt"

// EventKind tags entries of a recorded execution trace.
type EventKind int

// Trace event kinds.
const (
	EvFailure         EventKind = iota // a failure struck (Level = class)
	EvAbsorbedFailure                  // failure inside the correlation window of a previous one
	EvCheckpointDone                   // a checkpoint completed (Level = its level)
	EvCheckpointAbort                  // a checkpoint was killed by a failure
	EvRecoveryDone                     // allocation + recovery finished (Level = restore level, -1 scratch)
	EvCompletion                       // the run finished
	EvSilentDetect                     // verify-on-restore rejected a corrupted checkpoint (Level = its level)
)

func (k EventKind) String() string {
	switch k {
	case EvFailure:
		return "failure"
	case EvAbsorbedFailure:
		return "absorbed-failure"
	case EvCheckpointDone:
		return "checkpoint"
	case EvCheckpointAbort:
		return "checkpoint-abort"
	case EvRecoveryDone:
		return "recovery"
	case EvCompletion:
		return "completion"
	case EvSilentDetect:
		return "silent-detect"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// TraceEvent is one entry of a recorded execution trace.
type TraceEvent struct {
	Time     float64 // wall-clock seconds
	Kind     EventKind
	Level    int     // 0-based level/class; -1 where not applicable
	Progress float64 // productive progress at the event, seconds
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%.1fs %s L%d p=%.0f", e.Time, e.Kind, e.Level+1, e.Progress)
}
