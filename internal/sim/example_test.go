package sim_test

import (
	"fmt"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
	"mlckpt/internal/stats"
)

// Example simulates one checkpointed execution and prints its breakdown
// structure.
func Example() {
	params := &model.Params{
		Te:      100 * failure.SecondsPerDay, // 100 core-days
		Speedup: speedup.Quadratic{Kappa: 0.5, NStar: 1e4},
		Levels: overhead.SymmetricLevels([]overhead.Cost{
			overhead.Constant(1), overhead.Constant(3),
			overhead.Constant(5), overhead.Constant(20),
		}, 0.5),
		Alloc: 10,
		Rates: failure.MustParseRates("8-4-2-1", 1e4),
	}
	cfg := sim.Config{
		Params: params,
		N:      8000,
		X:      []float64{60, 30, 12, 6},
	}
	res, err := sim.Run(cfg, stats.NewRNG(42))
	if err != nil {
		panic(err)
	}
	sum := res.Productive + res.Checkpoint + res.Restart + res.Rollback
	fmt.Printf("portions cover the wall clock: %v\n", sum > 0.999*res.WallClock)
	fmt.Printf("completed: %v\n", !res.Truncated)
	// Output:
	// portions cover the wall clock: true
	// completed: true
}
