package sim

import (
	"fmt"
	"math"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
	"mlckpt/internal/stats"
)

// TestSimulatorTracksAnalyticWallClock is the property test tying the
// event-driven simulator to Formula 21: over randomized valid problem
// instances, the mean simulated wall clock must converge to the analytic
// self-consistent E(T_w) within a statistical bound.
//
// The bound has two parts. The sampling part is a 5-sigma confidence
// radius on the simulated mean (the simulator is stochastic). The model
// part is a 15% relative allowance: Formula 21 is a first-order model
// (failures during recovery/rollback are re-linearized, not compounded),
// so the simulator legitimately sits a few percent away even at infinite
// sample size. A violation of BOTH bounds means the simulator and the
// analytic model have drifted apart.
func TestSimulatorTracksAnalyticWallClock(t *testing.T) {
	const (
		cases    = 10
		runs     = 150
		modelTol = 0.15
		sigmas   = 5.0
	)
	rng := stats.NewRNG(20260806)
	for c := 0; c < cases; c++ {
		p, n, x, wct := randomInstance(t, rng)
		t.Run(fmt.Sprintf("case-%d", c), func(t *testing.T) {
			agg, err := Simulate(Config{Params: p, N: n, X: x}, runs, rng.Uint64())
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			mean := agg.WallClock.Mean
			ciRadius := sigmas * agg.WallClock.StdDev / math.Sqrt(float64(agg.WallClock.Count))
			gap := math.Abs(mean - wct)
			if gap > ciRadius && gap > modelTol*wct {
				t.Errorf("simulated mean %.1f s vs analytic E(T_w) %.1f s: gap %.1f s exceeds both %g-sigma radius %.1f s and %g%% model tolerance",
					mean, wct, gap, sigmas, ciRadius, 100*modelTol)
			}
			if agg.Truncated > 0 {
				t.Logf("note: %d/%d runs truncated", agg.Truncated, agg.Runs)
			}
		})
	}
}

// randomInstance draws a random valid problem, picks a scale near the
// model's sweet spot, and solves the Young/μ fixed point for the analytic
// E(T_w) (Formula 21) at that configuration.
func randomInstance(t *testing.T, rng *stats.RNG) (p *model.Params, n float64, x []float64, wct float64) {
	t.Helper()
	u := func(lo, hi float64) float64 { return lo + (hi-lo)*rng.Float64() }

	nStar := u(5e3, 3e4)
	// Increasing per-level costs, decreasing per-level rates: the shape
	// every multilevel deployment has (cheap local copies fail often,
	// expensive PFS writes rarely).
	base := u(0.5, 2)
	costs := []overhead.Cost{
		overhead.Constant(base),
		overhead.Constant(base * u(2, 3)),
		overhead.Constant(base * u(4, 6)),
		overhead.Constant(base * u(12, 25)),
	}
	r1 := u(4, 16)
	rates := fmt.Sprintf("%g-%g-%g-%g", r1, r1/2, r1/4, r1/8)
	p = &model.Params{
		Te:      u(50, 400) * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: u(0.3, 0.8), NStar: nStar},
		Levels:  overhead.SymmetricLevels(costs, u(0.4, 1)),
		Alloc:   u(5, 30),
		Rates:   failure.MustParseRates(rates, nStar),
	}
	n = nStar * u(0.3, 0.7)

	// Young/μ fixed point: the same loop Algorithm 1's inner solve uses.
	x = []float64{1, 1, 1, 1}
	wct = p.ProductiveTime(n)
	for k := 0; k < 200; k++ {
		mu := p.MuOfN(n, wct)
		for i := range x {
			x[i] = math.Max(1, p.YoungX(n, mu, i))
		}
		next := p.WallClock(x, n, mu)
		if math.Abs(next-wct) < 1e-6*wct {
			wct = next
			break
		}
		wct = next
	}
	if wct <= 0 || math.IsNaN(wct) || math.IsInf(wct, 0) {
		t.Fatalf("degenerate analytic wall clock %g for random instance", wct)
	}
	return p, n, x, wct
}
