package sim

import (
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/stats"
)

func TestReplayDeterministicAcrossSeeds(t *testing.T) {
	// With a fixed trace and no jitter, the run is fully deterministic:
	// different RNG seeds must produce the identical result.
	cfg := testConfig("8-4-2-1", 8000, []float64{60, 30, 12, 6})
	trace := failure.Trace(cfg.Params.Rates, 8000, 30*failure.SecondsPerDay,
		failure.Exponential, 0, stats.NewRNG(55))
	cfg.Replay = trace
	a, err := Run(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, stats.NewRNG(999))
	if err != nil {
		t.Fatal(err)
	}
	if a.WallClock != b.WallClock || a.TotalFailures() != b.TotalFailures() {
		t.Errorf("replay not deterministic: %g/%d vs %g/%d",
			a.WallClock, a.TotalFailures(), b.WallClock, b.TotalFailures())
	}
}

func TestReplayConsumesTraceInOrder(t *testing.T) {
	// A handcrafted trace: the run must see exactly the failures that fall
	// inside its wall clock, in their classes.
	cfg := testConfig("1-1-1-1", 8000, []float64{60, 30, 12, 6})
	P := cfg.Params.ProductiveTime(8000)
	cfg.Replay = []failure.Event{
		{Time: P * 0.2, Level: 0},
		{Time: P * 0.5, Level: 2},
		{Time: P * 1e6, Level: 3}, // far beyond completion: never fires
	}
	r, err := Run(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures[0] != 1 || r.Failures[2] != 1 {
		t.Errorf("failures = %v, want one class-1 and one class-3", r.Failures)
	}
	if r.Failures[3] != 0 {
		t.Errorf("event beyond completion fired: %v", r.Failures)
	}
}

func TestReplayEmptyTraceIsFailureFree(t *testing.T) {
	cfg := testConfig("16-12-8-4", 8000, []float64{60, 30, 12, 6})
	cfg.Replay = []failure.Event{} // non-nil empty: replay mode, no failures
	r, err := Run(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalFailures() != 0 || r.Restart != 0 {
		t.Errorf("empty replay produced failures: %+v", r)
	}
}

func TestReplayClampsForeignLevels(t *testing.T) {
	cfg := testConfig("1-1-1-1", 8000, []float64{60, 30, 12, 6})
	P := cfg.Params.ProductiveTime(8000)
	cfg.Replay = []failure.Event{{Time: P * 0.3, Level: 9}} // 10-class log
	r, err := Run(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures[3] != 1 {
		t.Errorf("foreign level not clamped to the top class: %v", r.Failures)
	}
}

func TestReplayRoundTripFromRecordedRun(t *testing.T) {
	// Record a stochastic run's failures, replay them, and compare: with
	// jitter off the replayed run must reproduce the original wall clock
	// (failures during recovery are clamped forward in the replay, which
	// the recorded event times already reflect).
	cfg := testConfig("8-4-2-1", 8000, []float64{60, 30, 12, 6})
	cfg.RecordEvents = true
	orig, err := Run(cfg, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	var trace []failure.Event
	for _, e := range orig.Events {
		if e.Kind == EvFailure {
			trace = append(trace, failure.Event{Time: e.Time, Level: e.Level})
		}
	}
	replay := cfg
	replay.RecordEvents = false
	replay.Replay = trace
	rep, err := Run(replay, stats.NewRNG(999))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFailures() != orig.TotalFailures() {
		t.Errorf("failure counts differ: %d vs %d", rep.TotalFailures(), orig.TotalFailures())
	}
	if d := rep.WallClock - orig.WallClock; d > 1e-6*orig.WallClock || d < -1e-6*orig.WallClock {
		t.Errorf("replayed wall clock %g != original %g", rep.WallClock, orig.WallClock)
	}
}
