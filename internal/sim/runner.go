package sim

import (
	"fmt"
	"runtime"
	"sync"

	"mlckpt/internal/stats"
)

// Aggregate summarizes a batch of runs (the paper reports means over 100
// runs per configuration).
type Aggregate struct {
	Runs       int
	WallClock  stats.Summary
	Productive stats.Summary
	Checkpoint stats.Summary
	Restart    stats.Summary
	Rollback   stats.Summary
	Failures   stats.Summary // total failures per run
	Truncated  int           // runs cut off at MaxWallClock
}

// RunMany executes runs independent simulations in parallel (one RNG stream
// per run, all derived deterministically from seed) and returns the
// per-run results in run order.
func RunMany(cfg Config, runs int, seed uint64) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if runs <= 0 {
		return nil, fmt.Errorf("%w: runs = %d", ErrConfig, runs)
	}
	// Derive one independent RNG per run up front so results do not depend
	// on goroutine scheduling.
	root := stats.NewRNG(seed)
	rngs := make([]*stats.RNG, runs)
	for i := range rngs {
		rngs[i] = root.Split()
	}

	results := make([]Result, runs)
	errs := make([]error, runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	// Only the batch's first run keeps its trace track: a 100-run batch
	// emitting spans for every run would swamp the timeline without adding
	// information (run 0 is representative, and its seed is fixed), while
	// counters — integer sums, order-independent — record for all runs.
	quiet := cfg
	quiet.ObsTrack = ""

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := quiet
				if i == 0 {
					c = cfg
				}
				results[i], errs[i] = Run(c, rngs[i])
			}
		}()
	}
	for i := 0; i < runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Summarize aggregates a batch of results.
func Summarize(results []Result) Aggregate {
	agg := Aggregate{Runs: len(results)}
	n := len(results)
	slab := make([]float64, 6*n) // one backing array for the six metric columns
	wct := slab[0*n : 1*n]
	prod := slab[1*n : 2*n]
	ckpt := slab[2*n : 3*n]
	rst := slab[3*n : 4*n]
	rb := slab[4*n : 5*n]
	fl := slab[5*n : 6*n]
	for i, r := range results {
		wct[i] = r.WallClock
		prod[i] = r.Productive
		ckpt[i] = r.Checkpoint
		rst[i] = r.Restart
		rb[i] = r.Rollback
		fl[i] = float64(r.TotalFailures())
		if r.Truncated {
			agg.Truncated++
		}
	}
	agg.WallClock = stats.Summarize(wct)
	agg.Productive = stats.Summarize(prod)
	agg.Checkpoint = stats.Summarize(ckpt)
	agg.Restart = stats.Summarize(rst)
	agg.Rollback = stats.Summarize(rb)
	agg.Failures = stats.Summarize(fl)
	return agg
}

// Simulate is the convenience composition of RunMany and Summarize.
func Simulate(cfg Config, runs int, seed uint64) (Aggregate, error) {
	results, err := RunMany(cfg, runs, seed)
	if err != nil {
		return Aggregate{}, err
	}
	return Summarize(results), nil
}
