package sim

import (
	"errors"
	"math"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
	"mlckpt/internal/stats"
)

// testParams builds a small, fast scenario: 100 core-days of work, ideal
// scale 10k cores, modest constant costs.
func testParams(spec string) *model.Params {
	return &model.Params{
		Te:      100 * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: 0.5, NStar: 1e4},
		Levels: overhead.SymmetricLevels([]overhead.Cost{
			overhead.Constant(1),
			overhead.Constant(3),
			overhead.Constant(5),
			overhead.Constant(20),
		}, 0.5),
		Alloc: 10,
		Rates: failure.MustParseRates(spec, 1e4),
	}
}

func testConfig(spec string, n float64, x []float64) Config {
	return Config{Params: testParams(spec), N: n, X: x}
}

func TestValidate(t *testing.T) {
	good := testConfig("4-3-2-1", 5000, []float64{40, 20, 10, 5})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.N = 0
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("zero N: %v", err)
	}
	bad = good
	bad.X = []float64{1, 2}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("short X: %v", err)
	}
	bad = good
	bad.X = []float64{0.5, 2, 3, 4}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("x<1: %v", err)
	}
	bad = good
	bad.JitterRatio = 1.5
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("jitter: %v", err)
	}
	var nilCfg Config
	if err := nilCfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("nil params: %v", err)
	}
}

func TestFailureFreeRun(t *testing.T) {
	// Zero failure rates: wall clock = productive + checkpoints exactly,
	// no restart, no rollback.
	cfg := testConfig("0-0-0-0", 5000, []float64{40, 20, 10, 5})
	r, err := Run(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	P := cfg.Params.ProductiveTime(cfg.N)
	if math.Abs(r.Productive-P) > 1e-6*P {
		t.Errorf("productive = %g, want %g", r.Productive, P)
	}
	if r.Restart != 0 || r.Rollback != 0 {
		t.Errorf("failure-free run has restart %g rollback %g", r.Restart, r.Rollback)
	}
	if r.TotalFailures() != 0 {
		t.Errorf("failures = %v", r.Failures)
	}
	// Expected checkpoint counts: the level-4 marks at k/5 coincide with
	// level-1/2/3 marks periodically, which are then skipped.
	// Level 4 takes exactly x4-1 = 4 checkpoints.
	if r.CheckpointsTaken[3] != 4 {
		t.Errorf("level-4 checkpoints = %d, want 4", r.CheckpointsTaken[3])
	}
	sum := r.Productive + r.Checkpoint + r.Restart + r.Rollback
	if math.Abs(sum-r.WallClock) > 1e-6*r.WallClock {
		t.Errorf("portions sum %g != wall clock %g", sum, r.WallClock)
	}
}

func TestCoincidentMarksSkipLowerLevels(t *testing.T) {
	// x = (8, 4, 2, 1): every level-2 mark coincides with a level-1 mark,
	// and the level-3 mark coincides with both. Expected completed
	// checkpoints: L3: 1 (at 1/2), L2: 2 (at 1/4, 3/4), L1: 4 (odd 1/8s).
	cfg := testConfig("0-0-0-0", 5000, []float64{8, 4, 2, 1})
	r, err := Run(cfg, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 2, 1, 0}
	for i, w := range want {
		if r.CheckpointsTaken[i] != w {
			t.Errorf("level %d checkpoints = %d, want %d (got %v)", i+1, r.CheckpointsTaken[i], w, r.CheckpointsTaken)
		}
	}
}

func TestPortionsAlwaysSumToWallClock(t *testing.T) {
	cfg := testConfig("24-12-6-3", 8000, []float64{60, 30, 12, 6})
	results, err := RunMany(cfg, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		sum := r.Productive + r.Checkpoint + r.Restart + r.Rollback
		if math.Abs(sum-r.WallClock) > 1e-6*(1+r.WallClock) {
			t.Fatalf("run %d: portions %g != wall %g", i, sum, r.WallClock)
		}
		P := cfg.Params.ProductiveTime(cfg.N)
		if !r.Truncated && math.Abs(r.Productive-P) > 1e-6*P {
			t.Fatalf("run %d: productive %g != P %g", i, r.Productive, P)
		}
	}
}

func TestFailuresIncreaseWallClock(t *testing.T) {
	x := []float64{60, 30, 12, 6}
	quiet, err := Simulate(testConfig("1-0.5-0.25-0.125", 8000, x), 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Simulate(testConfig("32-16-8-4", 8000, x), 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.WallClock.Mean <= quiet.WallClock.Mean {
		t.Errorf("more failures did not slow the run: %g vs %g", noisy.WallClock.Mean, quiet.WallClock.Mean)
	}
	if noisy.Rollback.Mean <= quiet.Rollback.Mean {
		t.Errorf("rollback did not grow with failures")
	}
}

func TestFailureCountsMatchRates(t *testing.T) {
	// Empirical failure counts per level ≈ rate × wall-clock. Use a long
	// workload so even the rarest level accumulates enough events.
	cfg := testConfig("12-6-3-1.5", 1e4, []float64{120, 60, 24, 12})
	cfg.Params.Te = 1000 * failure.SecondsPerDay
	results, err := RunMany(cfg, 120, 11)
	if err != nil {
		t.Fatal(err)
	}
	var wall float64
	counts := make([]float64, 4)
	for _, r := range results {
		wall += r.WallClock
		for i, c := range r.Failures {
			counts[i] += float64(c)
		}
	}
	days := wall / failure.SecondsPerDay
	for i, want := range []float64{12, 6, 3, 1.5} {
		got := counts[i] / days
		if math.Abs(got-want) > 0.25*want {
			t.Errorf("level %d: %.2f failures/day, want ≈%g", i+1, got, want)
		}
	}
}

func TestRollbackScopeByLevel(t *testing.T) {
	// Only level-1 failures, frequent level-1 checkpoints: rollback should
	// be small. Same rate as class-4 failures with only x4 checkpoints at
	// the same frequency... but level-4 recovery is costlier and rollback
	// similar; instead verify: with class-4 failures and ONLY level-1
	// checkpoints (x = [many,1,1,1]), rollback is huge (level-1 files
	// cannot restore class-4 failures).
	lowClass, err := Simulate(testConfig("8-0-0-0", 8000, []float64{100, 1, 1, 1}), 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfgHigh := testConfig("0-0-0-8", 8000, []float64{100, 1, 1, 1})
	cfgHigh.MaxWallClock = 400 * failure.SecondsPerDay
	highClass, err := Simulate(cfgHigh, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if highClass.Rollback.Mean <= 5*lowClass.Rollback.Mean {
		t.Errorf("class-4 failures with only L1 checkpoints should devastate: rollback %g vs %g",
			highClass.Rollback.Mean, lowClass.Rollback.Mean)
	}
}

func TestHigherLevelCheckpointRestoresLowerClass(t *testing.T) {
	// Only level-4 checkpoints but only class-1 failures: the PFS file
	// must serve as the restore point (rollback bounded by interval size).
	cfg := testConfig("8-0-0-0", 8000, []float64{1, 1, 1, 20})
	results, err := RunMany(cfg, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	P := cfg.Params.ProductiveTime(cfg.N)
	for _, r := range results {
		if r.Truncated {
			t.Fatal("run truncated; restore from higher level not working")
		}
		_ = P
	}
}

func TestClassCFailureDestroysLowerCheckpoints(t *testing.T) {
	// Deterministic scenario via a single engineered failure: use a
	// level-2-only failure rate so every failure wipes L1 checkpoints.
	// With x1 large and x2 = 1 (no L2 checkpoints), every class-2 failure
	// rolls all the way back to the start, no matter how many L1
	// checkpoints completed. With a long MaxWallClock the run truncates
	// rather than completes if failures are frequent enough.
	p := testParams("0-40-0-0")
	cfg := Config{
		Params:       p,
		N:            1e4,
		X:            []float64{200, 1, 1, 1},
		MaxWallClock: 30 * failure.SecondsPerDay,
	}
	r, err := Run(cfg, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	// P at 1e4 = 100 core-days / 2500 = 0.04 days... here g(1e4) = κN/2 =
	// 2500, P = 100/2500 days = 3456 s. MTBF(class2) = 2160 s < P: the run
	// must roll back to zero repeatedly, inflating rollback well beyond P.
	if r.Rollback < r.Productive {
		t.Errorf("expected rollback >> productive when L2 failures wipe everything; rollback=%g productive=%g",
			r.Rollback, r.Productive)
	}
}

func TestJitterChangesDurationsNotCorrectness(t *testing.T) {
	base := testConfig("8-4-2-1", 8000, []float64{60, 30, 12, 6})
	jit := base
	jit.JitterRatio = 0.3
	r1, err := Simulate(base, 50, 17)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(jit, 50, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Means should agree within noise (jitter is symmetric).
	if stats.RelErr(r1.WallClock.Mean, r2.WallClock.Mean) > 0.1 {
		t.Errorf("jitter shifted the mean too much: %g vs %g", r1.WallClock.Mean, r2.WallClock.Mean)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig("8-4-2-1", 8000, []float64{60, 30, 12, 6})
	a, err := RunMany(cfg, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMany(cfg, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].WallClock != b[i].WallClock || a[i].TotalFailures() != b[i].TotalFailures() {
			t.Fatalf("run %d differs across identical seeds", i)
		}
	}
}

func TestSimulateAgainstAnalyticModel(t *testing.T) {
	// The mean simulated wall clock should track the analytic E(T_w) at
	// the model's own optimal solution within ~15% (the model is
	// first-order; the simulator compounds).
	p := testParams("8-4-2-1")
	n := 6000.0
	tEst := p.ProductiveTime(n)
	var wct float64
	x := []float64{1, 1, 1, 1}
	for k := 0; k < 50; k++ {
		mu := p.MuOfN(n, tEst)
		for i := range x {
			x[i] = p.YoungX(n, mu, i)
		}
		wct = p.WallClock(x, n, mu)
		if math.Abs(wct-tEst) < 1 {
			break
		}
		tEst = wct
	}
	agg, err := Simulate(Config{Params: p, N: n, X: x}, 200, 23)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(agg.WallClock.Mean, wct) > 0.15 {
		t.Errorf("simulated %g vs analytic %g (rel %.1f%%)",
			agg.WallClock.Mean, wct, 100*stats.RelErr(agg.WallClock.Mean, wct))
	}
}

func TestWeibullDistributionRuns(t *testing.T) {
	cfg := testConfig("8-4-2-1", 8000, []float64{60, 30, 12, 6})
	cfg.Dist = failure.Weibull
	cfg.WeibullShape = 0.7
	agg, err := Simulate(cfg, 30, 29)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Failures.Mean <= 0 {
		t.Error("no failures under Weibull")
	}
}

func TestDisableFailuresDuringWindows(t *testing.T) {
	cfg := testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6})
	cfg.DisableFailuresDuringCkpt = true
	cfg.DisableFailuresDuringRecovery = true
	agg, err := Simulate(cfg, 40, 31)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6}), 40, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Suppressing failures in overhead windows can only help (≤, plus noise).
	if agg.WallClock.Mean > full.WallClock.Mean*1.1 {
		t.Errorf("suppressed-failure run slower: %g vs %g", agg.WallClock.Mean, full.WallClock.Mean)
	}
}

func TestRunManyErrors(t *testing.T) {
	cfg := testConfig("8-4-2-1", 8000, []float64{60, 30, 12, 6})
	if _, err := RunMany(cfg, 0, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("runs=0: %v", err)
	}
	bad := cfg
	bad.N = -5
	if _, err := RunMany(bad, 10, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad config: %v", err)
	}
}

func TestTruncation(t *testing.T) {
	cfg := testConfig("0-0-0-40", 1e4, []float64{1, 1, 1, 1})
	cfg.MaxWallClock = 2 * failure.SecondsPerDay
	r, err := Run(cfg, stats.NewRNG(37))
	if err != nil {
		t.Fatal(err)
	}
	// No checkpoints (x=1 everywhere) with 40 class-4 failures/day and
	// P ≈ 3456 s (MTBF 2160 s): essentially certain to truncate.
	if !r.Truncated {
		t.Skip("run completed against the odds; acceptable at this probability")
	}
	if r.WallClock < cfg.MaxWallClock {
		t.Errorf("truncated run reports wall clock %g < cap %g", r.WallClock, cfg.MaxWallClock)
	}
}

func TestAggregateSummaries(t *testing.T) {
	cfg := testConfig("8-4-2-1", 8000, []float64{60, 30, 12, 6})
	agg, err := Simulate(cfg, 25, 41)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 25 {
		t.Errorf("Runs = %d", agg.Runs)
	}
	if agg.WallClock.Count != 25 || agg.WallClock.Mean <= 0 {
		t.Errorf("WallClock summary: %+v", agg.WallClock)
	}
	approx := agg.Productive.Mean + agg.Checkpoint.Mean + agg.Restart.Mean + agg.Rollback.Mean
	if math.Abs(approx-agg.WallClock.Mean) > 1e-6*agg.WallClock.Mean {
		t.Errorf("mean portions %g != mean wall clock %g", approx, agg.WallClock.Mean)
	}
}

func TestEfficiencyMetric(t *testing.T) {
	cfg := testConfig("0-0-0-0", 5000, []float64{1, 1, 1, 1})
	r, err := Run(cfg, stats.NewRNG(43))
	if err != nil {
		t.Fatal(err)
	}
	// Failure-free, checkpoint-free: efficiency = g(N)/N.
	g := cfg.Params.Speedup.Speedup(5000)
	want := g / 5000
	if got := r.Efficiency(cfg.Params.Te, 5000); math.Abs(got-want) > 1e-9 {
		t.Errorf("efficiency = %g, want %g", got, want)
	}
}

func TestSilentErrorsDetectedAndPaid(t *testing.T) {
	// Every checkpoint corrupted: every rollback must reject at least one
	// file, pay detection latency, and still finish (scratch restarts are
	// always possible).
	cfg := testConfig("4-3-2-1", 5000, []float64{40, 20, 10, 5})
	cfg.SilentCorruptionProb = 1
	res, err := Run(cfg, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("run truncated")
	}
	if res.SilentCorrupted == 0 {
		t.Fatal("prob-1 corruption injected nothing")
	}
	if res.TotalFailures() > 0 && res.SilentDetected == 0 {
		t.Error("failures struck but no corruption was ever detected at restore")
	}
	if res.SilentDetected > res.SilentCorrupted {
		t.Errorf("detected %d > corrupted %d", res.SilentDetected, res.SilentCorrupted)
	}

	// The same seed without corruption must be cheaper: detection latency
	// and deeper rollbacks only add time.
	clean := cfg
	clean.SilentCorruptionProb = 0
	cres, err := Run(clean, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFailures() > 0 && res.WallClock <= cres.WallClock {
		t.Errorf("corrupted run wall %g not above clean %g", res.WallClock, cres.WallClock)
	}
	if cres.SilentCorrupted != 0 || cres.SilentDetected != 0 {
		t.Errorf("clean run reported silent errors: %+v", cres)
	}
}

func TestSilentErrorConfigGuards(t *testing.T) {
	cfg := testConfig("4-3-2-1", 5000, []float64{40, 20, 10, 5})
	cfg.SilentCorruptionProb = -0.1
	if _, err := Run(cfg, stats.NewRNG(1)); !errors.Is(err, ErrConfig) {
		t.Errorf("negative prob: %v", err)
	}
	cfg.SilentCorruptionProb = 1.5
	if _, err := Run(cfg, stats.NewRNG(1)); !errors.Is(err, ErrConfig) {
		t.Errorf("prob > 1: %v", err)
	}
	cfg.SilentCorruptionProb = 0.5
	if _, err := RunTicks(cfg, 1, stats.NewRNG(1)); !errors.Is(err, ErrConfig) {
		t.Errorf("RunTicks with silent errors: %v", err)
	}
}

// TestSilentErrorsZeroProbIdentical pins the golden-stability guarantee:
// enabling the feature at rate zero changes nothing.
func TestSilentErrorsZeroProbIdentical(t *testing.T) {
	cfg := testConfig("4-3-2-1", 8000, []float64{30, 15, 8, 4})
	a, err := Run(cfg, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	cfg.SilentCorruptionProb = 0
	b, err := Run(cfg, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow floateq identical seeded runs must agree bit-for-bit
	if a.WallClock != b.WallClock || a.TotalFailures() != b.TotalFailures() {
		t.Errorf("zero-prob run diverged: %+v vs %+v", a, b)
	}
}
