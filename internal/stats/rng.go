// Package stats provides the deterministic random-number substrate and the
// descriptive statistics used by the failure models, the exascale simulator,
// and the experiment harness.
//
// All stochastic components in this repository draw from stats.RNG rather
// than math/rand's global source so that every experiment is reproducible
// from a seed and safe to parallelize (one RNG per simulation run).
package stats

import "math"

// RNG is a small, fast, deterministic generator (SplitMix64 core). It is
// NOT cryptographically secure; it exists to make simulations reproducible.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new independent generator derived from the current state,
// used to give each parallel simulation run its own stream.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// DeriveSeed maps a root seed and a substream name to an independent stream
// seed. The derivation depends only on (root, key) — never on call order or
// goroutine scheduling — which is what lets a parallel sweep hand every job
// its own RNG stream while staying bit-identical for any worker count. The
// key bytes are folded in FNV-1a style and the result is pushed through the
// SplitMix64 finalizer so near-identical keys land far apart in state space.
func DeriveSeed(root uint64, key string) uint64 {
	h := root ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Uint64 returns the next 64 random bits.
//
//mlckpt:hotpath
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exponential samples an exponential interarrival time with the given rate
// (events per unit time). Failure interarrivals in the paper follow the
// exponential distribution ([37], Section IV-A).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Weibull samples a Weibull-distributed value with the given scale and
// shape. shape == 1 reduces to Exponential(1/scale); shape < 1 models the
// infant-mortality regime some HPC failure logs exhibit. Used by the
// failure-distribution ablation.
func (r *RNG) Weibull(scale, shape float64) float64 {
	if scale <= 0 || shape <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Normal samples a normal value via Box–Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// PoissonSample samples a Poisson-distributed count with the given mean,
// using Knuth's method for small means and a normal approximation above 500
// (where the approximation error is far below the simulation noise floor).
func (r *RNG) PoissonSample(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Jitter returns v perturbed by a uniform relative error in [-ratio, +ratio],
// clamped at zero. The paper's simulator jitters checkpoint/restart
// overheads with a random error ratio of up to 30% (Section IV-A).
func (r *RNG) Jitter(v, ratio float64) float64 {
	if ratio <= 0 {
		return v
	}
	out := v * (1 + r.Uniform(-ratio, ratio))
	if out < 0 {
		return 0
	}
	return out
}
