package stats

import (
	"fmt"
	"testing"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "fig5/16-12-8-4/ml-opt-scale")
	b := DeriveSeed(42, "fig5/16-12-8-4/ml-opt-scale")
	if a != b {
		t.Fatalf("same inputs gave %#x and %#x", a, b)
	}
}

func TestDeriveSeedSeparatesStreams(t *testing.T) {
	seen := map[uint64]string{}
	roots := []uint64{0, 1, 42, ^uint64(0)}
	keys := []string{"", "a", "b", "ab", "ba", "job-0", "job-1", "job-10"}
	for _, root := range roots {
		for _, key := range keys {
			s := DeriveSeed(root, key)
			if prev, dup := seen[s]; dup {
				t.Errorf("collision: (%d,%q) and %s both map to %#x", root, key, prev, s)
			}
			seen[s] = key
		}
	}
}

func TestDeriveSeedStreamsAreIndependent(t *testing.T) {
	// Streams seeded from adjacent keys must not be trivially correlated:
	// compare the first draws of many derived streams for duplicates.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seed := DeriveSeed(7, fmt.Sprintf("stream-%d", i))
		v := NewRNG(seed).Uint64()
		seen[v] = true
	}
	if len(seen) != 1000 {
		t.Errorf("only %d distinct first draws across 1000 distinct streams", len(seen))
	}
}
