package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	if math.Abs(s.StdDev-2.138) > 0.001 {
		t.Errorf("StdDev = %g, want ≈2.138", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Median) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.Median != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("single summary = %+v", s)
	}
	if s.StdDev != 0 {
		t.Errorf("single-sample StdDev = %g, want 0", s.StdDev)
	}
}

func TestMedianOdd(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Errorf("Median = %g, want 5", m)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := NewRNG(3)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = r.Normal(0, 1)
	}
	for i := range large {
		large[i] = r.Normal(0, 1)
	}
	if CI95(large) >= CI95(small) {
		t.Errorf("CI95 did not shrink: %g vs %g", CI95(large), CI95(small))
	}
	if !math.IsNaN(CI95([]float64{1})) {
		t.Error("CI95 of one sample should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %g", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("q0.5 = %g", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q0.25 = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, 2)) {
		t.Error("invalid quantile inputs should yield NaN")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts, edges := Histogram(xs, 5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: %d bins, %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram lost samples: %d/%d", total, len(xs))
	}
	if counts[0] != 2 || counts[4] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if c, e := Histogram(nil, 5); c != nil || e != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestHistogramConstantSample(t *testing.T) {
	counts, _ := Histogram([]float64{3, 3, 3}, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant-sample histogram lost values: %v", counts)
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(100, 104); math.Abs(e-4.0/104.0) > 1e-12 {
		t.Errorf("RelErr = %g", e)
	}
	if e := RelErr(0, 0); e != 0 {
		t.Errorf("RelErr(0,0) = %g", e)
	}
	if e := RelErr(-5, 5); e != 2 {
		t.Errorf("RelErr(-5,5) = %g, want 2", e)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "mean=2") {
		t.Errorf("String() = %q", str)
	}
}

// Property: min <= median <= max and min <= mean <= max for any sample.
func TestSummaryOrderingProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
