package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 colliding values", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == s.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("split stream tracks parent: %d/1000 collisions", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Uniform(10, 20)
	}
	mean := sum / float64(n)
	if math.Abs(mean-15) > 0.05 {
		t.Errorf("Uniform(10,20) mean = %g, want ≈15", mean)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := NewRNG(11)
	rate := 2.5
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(rate)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exponential mean = %g, want %g", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.02 {
		t.Errorf("exponential variance = %g, want %g", variance, 1/(rate*rate))
	}
}

func TestExponentialZeroRate(t *testing.T) {
	r := NewRNG(1)
	if v := r.Exponential(0); !math.IsInf(v, 1) {
		t.Errorf("rate 0 should yield +Inf, got %g", v)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	r := NewRNG(13)
	n := 100000
	scale := 4.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(scale, 1)
	}
	mean := sum / float64(n)
	if math.Abs(mean-scale) > 0.1 {
		t.Errorf("Weibull(4,1) mean = %g, want ≈4", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(17)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.02 || math.Abs(sd-2) > 0.02 {
		t.Errorf("Normal(5,2) sample moments (%g, %g)", mean, sd)
	}
}

func TestPoissonSampleMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 40, 1200} {
		r := NewRNG(uint64(mean * 100))
		n := 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.PoissonSample(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%g) sample mean = %g", mean, got)
		}
	}
	r := NewRNG(1)
	if r.PoissonSample(0) != 0 || r.PoissonSample(-3) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 100000; i++ {
		v := r.Jitter(10, 0.3)
		if v < 7-1e-9 || v > 13+1e-9 {
			t.Fatalf("Jitter(10, 0.3) = %g outside [7, 13]", v)
		}
	}
	if v := r.Jitter(10, 0); v != 10 {
		t.Errorf("zero ratio should be identity, got %g", v)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// Property: jitter never goes negative even for ratios > 1.
func TestJitterNonNegativeProperty(t *testing.T) {
	prop := func(seed uint64, ratio float64) bool {
		r := NewRNG(seed)
		ratio = math.Abs(math.Mod(ratio, 3))
		for i := 0; i < 100; i++ {
			if r.Jitter(5, ratio) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
