package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary with NaN moments.
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs)}
	if len(xs) == 0 {
		s.Mean, s.StdDev, s.Min, s.Max, s.Median = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, v := range xs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, v := range xs {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean (NaN for an empty sample).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (1.96·σ/√n). The experiment tables report
// means of 100 runs, as in the paper.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	s := Summarize(xs)
	return 1.96 * s.StdDev / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram bins xs into n equal-width bins over [min, max] and returns the
// counts plus the bin edges (n+1 values).
func Histogram(xs []float64, n int) (counts []int, edges []float64) {
	if n < 1 || len(xs) == 0 {
		return nil, nil
	}
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	//lint:allow floateq exact equality is the degenerate all-equal-samples case that would make the bin width zero
	if lo == hi {
		hi = lo + 1
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + width*float64(i)
	}
	for _, v := range xs {
		idx := int((v - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return counts, edges
}

// RelErr returns |a-b| / max(|a|, |b|, tiny), a symmetric relative error.
// Experiment validation (Figure 4) asserts on this metric (< 4%).
func RelErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 1e-300 {
		return 0
	}
	return math.Abs(a-b) / den
}

// String renders the summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.3g min=%.6g med=%.6g max=%.6g",
		s.Count, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
