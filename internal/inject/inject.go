// Package inject is the deterministic fault-injection engine: it compiles
// a Spec (fault classes and rates) into a Plan whose every decision is a
// pure function of (plan seed, fault identity), never of call order,
// goroutine scheduling, or worker count.
//
// A Plan answers questions the protected stack asks at well-defined hook
// points — "is the snapshot committed at (level, rank, version) silently
// corrupted?", "does the k-th PFS write fail on attempt a?", "does crash
// event e also take the victim's level-2 partner?" — and each answer is
// drawn from an RNG stream derived via stats.DeriveSeed from the plan
// seed and a canonical key naming that one decision. Two consequences:
//
//   - Byte-reproducibility: the same Spec and seed yield the same fault
//     plan on any machine, at any sweep worker count, in any hook-call
//     order. Chaos grids can therefore be golden-tested like every other
//     experiment in this repository.
//   - Composability: hooks in different layers (fti commit, storage PFS
//     path, the real-run recovery loop) need no shared mutable state; the
//     plan is read-only after Compile and safe for concurrent use.
//
// The fault classes mirror what the multilevel checkpoint literature
// attacks the hierarchy with: silent snapshot corruption (bit flips) and
// truncation per level (Aupy et al., silent error detection), correlated
// partner-pair and parity-holder crashes that defeat levels 2 and 3, a
// crash landing inside a checkpoint or recovery window, and transient
// parallel-file-system errors that force retries.
package inject

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/stats"
)

// ErrSpec is returned for invalid fault specifications.
var ErrSpec = errors.New("inject: invalid spec")

// Spec declares the fault classes of a plan and their rates. All *Rate
// fields are probabilities in [0, 1]; a zero Spec injects nothing.
type Spec struct {
	// CorruptRate[i] is the probability that the snapshot committed at
	// level i+1 for one rank is silently corrupted at rest (bit flip or
	// truncation, split by TruncateFrac). Detection happens — if it
	// happens — at restore time, against the snapshot checksum.
	CorruptRate []float64 `json:"corrupt_rate,omitempty"`
	// TruncateFrac is the fraction of corruptions that truncate the
	// snapshot instead of flipping a bit (truncation also defeats
	// length-sensitive decoders, not just content checks).
	TruncateFrac float64 `json:"truncate_frac,omitempty"`

	// PartnerPairRate is the probability that a node-loss event also
	// takes the victim's level-2 partner — the correlated burst that
	// partner-copy checkpointing cannot survive.
	PartnerPairRate float64 `json:"partner_pair_rate,omitempty"`
	// ParityHolderRate is the probability that a node-loss event also
	// takes a parity holder of the victim's encoding group, eroding the
	// level-3 reconstruction margin.
	ParityHolderRate float64 `json:"parity_holder_rate,omitempty"`

	// CkptAbortRate is the probability that a given collective checkpoint
	// is struck mid-window: the in-flight checkpoint is destroyed and the
	// elapsed fraction of its cost is wasted.
	CkptAbortRate float64 `json:"ckpt_abort_rate,omitempty"`
	// RecoveryCrashRate is the probability that a crash strikes while a
	// recovery is in progress, forcing the survivors to re-survey and
	// possibly escalate to a higher rung.
	RecoveryCrashRate float64 `json:"recovery_crash_rate,omitempty"`

	// PFSWriteFailRate / PFSReadFailRate are per-attempt probabilities of
	// a transient parallel-file-system error; the storage layer retries
	// with bounded deterministic backoff.
	PFSWriteFailRate float64 `json:"pfs_write_fail_rate,omitempty"`
	PFSReadFailRate  float64 `json:"pfs_read_fail_rate,omitempty"`
}

// Validate checks that every rate is a probability.
func (s Spec) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("%w: %s = %g", ErrSpec, name, v)
		}
		return nil
	}
	for i, r := range s.CorruptRate {
		if err := check(fmt.Sprintf("corrupt_rate[%d]", i), r); err != nil {
			return err
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"truncate_frac", s.TruncateFrac},
		{"partner_pair_rate", s.PartnerPairRate},
		{"parity_holder_rate", s.ParityHolderRate},
		{"ckpt_abort_rate", s.CkptAbortRate},
		{"recovery_crash_rate", s.RecoveryCrashRate},
		{"pfs_write_fail_rate", s.PFSWriteFailRate},
		{"pfs_read_fail_rate", s.PFSReadFailRate},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	for _, r := range s.CorruptRate {
		if r > 0 {
			return false
		}
	}
	return s.PartnerPairRate == 0 && s.ParityHolderRate == 0 &&
		s.CkptAbortRate == 0 && s.RecoveryCrashRate == 0 &&
		s.PFSWriteFailRate == 0 && s.PFSReadFailRate == 0
}

// FaultKind tags a snapshot corruption.
type FaultKind int

// Snapshot corruption kinds.
const (
	BitFlip  FaultKind = iota // flip one bit at Offset
	Truncate                  // cut the snapshot to Len bytes
)

func (k FaultKind) String() string {
	switch k {
	case BitFlip:
		return "bit-flip"
	case Truncate:
		return "truncate"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault describes one snapshot corruption.
type Fault struct {
	Kind   FaultKind
	Offset int  // BitFlip: byte offset
	Bit    byte // BitFlip: mask with exactly one bit set
	Len    int  // Truncate: new length (< original)
}

// Apply mutates data in place per the fault and returns the (possibly
// shortened) slice. Out-of-range faults are clipped, never panic: the
// plan may have been compiled against a different size than the snapshot
// ended up with.
func (f Fault) Apply(data []byte) []byte {
	switch f.Kind {
	case BitFlip:
		if len(data) == 0 {
			return data
		}
		off := f.Offset
		if off >= len(data) || off < 0 {
			off = 0
		}
		bit := f.Bit
		if bit == 0 {
			bit = 1
		}
		data[off] ^= bit
		return data
	case Truncate:
		n := f.Len
		if n < 0 {
			n = 0
		}
		if n >= len(data) && len(data) > 0 {
			n = len(data) - 1
		}
		return data[:n]
	}
	return data
}

// Plan is a compiled, read-only fault plan. The zero value (and a nil
// *Plan) injects nothing, so callers thread it unconditionally.
type Plan struct {
	spec Spec
	seed uint64
}

// Compile validates the spec and binds it to a decision seed derived from
// the canonical (root, key) pair — the same derivation the sweep engine
// uses for job RNG streams, so a chaos grid cell's plan is part of its
// content identity.
func Compile(spec Spec, root uint64, key string) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Plan{spec: spec, seed: stats.DeriveSeed(root, key)}, nil
}

// MustCompile is Compile that panics on error, for tests and literal specs.
func MustCompile(spec Spec, root uint64, key string) *Plan {
	p, err := Compile(spec, root, key)
	if err != nil {
		panic(err)
	}
	return p
}

// Spec returns the plan's fault specification.
func (p *Plan) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// Seed returns the derived decision seed (for labeling runs and traces).
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// decision returns the RNG stream of one named decision. Every stream is
// independent of every other and of the order streams are opened in.
func (p *Plan) decision(key string) *stats.RNG {
	return stats.NewRNG(stats.DeriveSeed(p.seed, key))
}

// SnapshotFault reports whether the snapshot committed for rank at the
// given level (1-based) and version is silently corrupted, and with what.
// size is the snapshot length in bytes.
func (p *Plan) SnapshotFault(level, rank, version, size int) (Fault, bool) {
	if p == nil || size <= 0 || level < 1 || level > len(p.spec.CorruptRate) {
		return Fault{}, false
	}
	rate := p.spec.CorruptRate[level-1]
	if rate <= 0 {
		return Fault{}, false
	}
	rng := p.decision(fmt.Sprintf("snap/%d/%d/%d", level, rank, version))
	if rng.Float64() >= rate {
		return Fault{}, false
	}
	return p.drawFault(rng, size), true
}

// ParityFault is SnapshotFault for a level-3 parity shard, identified by
// its encoding group and shard index instead of a rank.
func (p *Plan) ParityFault(group, shard, version, size int) (Fault, bool) {
	if p == nil || size <= 0 || len(p.spec.CorruptRate) < 3 {
		return Fault{}, false
	}
	rate := p.spec.CorruptRate[2]
	if rate <= 0 {
		return Fault{}, false
	}
	rng := p.decision(fmt.Sprintf("parity/%d/%d/%d", group, shard, version))
	if rng.Float64() >= rate {
		return Fault{}, false
	}
	return p.drawFault(rng, size), true
}

func (p *Plan) drawFault(rng *stats.RNG, size int) Fault {
	if rng.Float64() < p.spec.TruncateFrac {
		return Fault{Kind: Truncate, Len: rng.Intn(size)}
	}
	return Fault{Kind: BitFlip, Offset: rng.Intn(size), Bit: 1 << rng.Intn(8)}
}

// PairCrash reports whether crash event `event` (a monotone per-run crash
// counter) also takes the victim's level-2 partner.
func (p *Plan) PairCrash(event int) bool {
	if p == nil || p.spec.PartnerPairRate <= 0 {
		return false
	}
	return p.decision(fmt.Sprintf("pair/%d", event)).Float64() < p.spec.PartnerPairRate
}

// ParityCrash reports whether crash event `event` also takes a parity
// holder of the victim's encoding group.
func (p *Plan) ParityCrash(event int) bool {
	if p == nil || p.spec.ParityHolderRate <= 0 {
		return false
	}
	return p.decision(fmt.Sprintf("paritycrash/%d", event)).Float64() < p.spec.ParityHolderRate
}

// CkptAbort reports whether the seq-th collective checkpoint of the run
// (at the given 1-based level) is struck mid-window. The second return is
// the elapsed fraction of the checkpoint cost wasted before the strike,
// in (0, 1).
func (p *Plan) CkptAbort(level, seq int) (float64, bool) {
	if p == nil || p.spec.CkptAbortRate <= 0 {
		return 0, false
	}
	rng := p.decision(fmt.Sprintf("ckptabort/%d/%d", level, seq))
	if rng.Float64() >= p.spec.CkptAbortRate {
		return 0, false
	}
	// Strictly interior fraction: the strike lands inside the window.
	return 0.05 + 0.9*rng.Float64(), true
}

// RecoveryCrash reports whether a crash strikes during the attempt-th
// recovery pass of crash event `event`, and returns the 0-based failure
// class of the new crash. Classes are drawn uniformly from {1, 2, 3}
// (storage-damaging classes; a transient would not interrupt recovery).
func (p *Plan) RecoveryCrash(event, attempt int) (int, bool) {
	if p == nil || p.spec.RecoveryCrashRate <= 0 {
		return 0, false
	}
	rng := p.decision(fmt.Sprintf("recovcrash/%d/%d", event, attempt))
	if rng.Float64() >= p.spec.RecoveryCrashRate {
		return 0, false
	}
	return 1 + rng.Intn(3), true
}

// PFSWriteFails reports whether attempt `attempt` (0-based) of the op-th
// PFS write operation fails transiently.
func (p *Plan) PFSWriteFails(op, attempt int) bool {
	if p == nil || p.spec.PFSWriteFailRate <= 0 {
		return false
	}
	return p.decision(fmt.Sprintf("pfsw/%d/%d", op, attempt)).Float64() < p.spec.PFSWriteFailRate
}

// PFSReadFails reports whether attempt `attempt` (0-based) of the op-th
// PFS read operation fails transiently.
func (p *Plan) PFSReadFails(op, attempt int) bool {
	if p == nil || p.spec.PFSReadFailRate <= 0 {
		return false
	}
	return p.decision(fmt.Sprintf("pfsr/%d/%d", op, attempt)).Float64() < p.spec.PFSReadFailRate
}
