package inject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func fullSpec() Spec {
	return Spec{
		CorruptRate:       []float64{0.3, 0.3, 0.3, 0.3},
		TruncateFrac:      0.4,
		PartnerPairRate:   0.5,
		ParityHolderRate:  0.5,
		CkptAbortRate:     0.2,
		RecoveryCrashRate: 0.3,
		PFSWriteFailRate:  0.4,
		PFSReadFailRate:   0.4,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if err := fullSpec().Validate(); err != nil {
		t.Fatalf("full spec: %v", err)
	}
	bad := []Spec{
		{CorruptRate: []float64{-0.1}},
		{CorruptRate: []float64{1.5}},
		{TruncateFrac: 2},
		{PartnerPairRate: -1},
		{PFSWriteFailRate: 1.0001},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrSpec) {
			t.Errorf("bad[%d]: err = %v, want ErrSpec", i, err)
		}
	}
}

func TestZero(t *testing.T) {
	if !(Spec{}).Zero() {
		t.Error("zero spec not Zero")
	}
	if !(Spec{CorruptRate: []float64{0, 0}}).Zero() {
		t.Error("all-zero corrupt rates not Zero")
	}
	if (Spec{PFSReadFailRate: 0.1}).Zero() {
		t.Error("nonzero spec reported Zero")
	}
}

// TestPlanDeterministic pins the core guarantee: every decision is a pure
// function of (seed, identity), independent of call order.
func TestPlanDeterministic(t *testing.T) {
	a := MustCompile(fullSpec(), 42, "chaos/cell-3")
	b := MustCompile(fullSpec(), 42, "chaos/cell-3")

	// Same queries in reverse order must give identical answers.
	type snapQ struct{ level, rank, version, size int }
	var queries []snapQ
	for level := 1; level <= 4; level++ {
		for rank := 0; rank < 8; rank++ {
			for version := 1; version <= 5; version++ {
				queries = append(queries, snapQ{level, rank, version, 256})
			}
		}
	}
	ansA := make(map[snapQ]Fault)
	okA := make(map[snapQ]bool)
	for _, q := range queries {
		f, ok := a.SnapshotFault(q.level, q.rank, q.version, q.size)
		ansA[q], okA[q] = f, ok
	}
	for i := len(queries) - 1; i >= 0; i-- {
		q := queries[i]
		f, ok := b.SnapshotFault(q.level, q.rank, q.version, q.size)
		if ok != okA[q] || f != ansA[q] {
			t.Fatalf("query %+v: order-dependent answer (%v,%v) vs (%v,%v)", q, f, ok, ansA[q], okA[q])
		}
	}
}

func TestPlanSeedSeparation(t *testing.T) {
	a := MustCompile(fullSpec(), 42, "cell-a")
	b := MustCompile(fullSpec(), 42, "cell-b")
	same, total := 0, 0
	for v := 1; v <= 200; v++ {
		fa, oka := a.SnapshotFault(1, 0, v, 1024)
		fb, okb := b.SnapshotFault(1, 0, v, 1024)
		if oka == okb && fa == fb {
			same++
		}
		total++
	}
	if same == total {
		t.Fatal("plans with different keys produced identical fault streams")
	}
}

// TestPlanConcurrentUse exercises a read-only plan from many goroutines
// (the sweep engine queries one plan from every worker); run under -race.
func TestPlanConcurrentUse(t *testing.T) {
	p := MustCompile(fullSpec(), 7, "race")
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]bool, 100)
			for i := range out {
				_, ok := p.SnapshotFault(1+i%4, i%16, i, 64)
				out[i] = ok || p.PFSWriteFails(i, 0) || p.PairCrash(i)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d disagreed at %d", g, i)
			}
		}
	}
}

func TestRatesCalibrated(t *testing.T) {
	spec := Spec{CorruptRate: []float64{0.25}, PFSWriteFailRate: 0.5}
	p := MustCompile(spec, 3, "calib")
	const n = 4000
	hits := 0
	for v := 0; v < n; v++ {
		if _, ok := p.SnapshotFault(1, 0, v, 128); ok {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.2 || got > 0.3 {
		t.Errorf("corrupt rate 0.25 realized as %g", got)
	}
	hits = 0
	for op := 0; op < n; op++ {
		if p.PFSWriteFails(op, 0) {
			hits++
		}
	}
	got = float64(hits) / n
	if got < 0.45 || got > 0.55 {
		t.Errorf("pfs write fail rate 0.5 realized as %g", got)
	}
}

func TestNilAndZeroPlansInjectNothing(t *testing.T) {
	var nilPlan *Plan
	zero := MustCompile(Spec{}, 1, "zero")
	for _, p := range []*Plan{nilPlan, zero} {
		if _, ok := p.SnapshotFault(1, 0, 1, 64); ok {
			t.Error("snapshot fault from empty plan")
		}
		if _, ok := p.ParityFault(0, 0, 1, 64); ok {
			t.Error("parity fault from empty plan")
		}
		if p.PairCrash(0) || p.ParityCrash(0) || p.PFSWriteFails(0, 0) || p.PFSReadFails(0, 0) {
			t.Error("crash/pfs fault from empty plan")
		}
		if _, ok := p.CkptAbort(1, 0); ok {
			t.Error("ckpt abort from empty plan")
		}
		if _, ok := p.RecoveryCrash(0, 0); ok {
			t.Error("recovery crash from empty plan")
		}
	}
}

func TestFaultApply(t *testing.T) {
	data := []byte{0, 0, 0, 0}
	out := Fault{Kind: BitFlip, Offset: 2, Bit: 0x10}.Apply(data)
	if out[2] != 0x10 {
		t.Errorf("bit flip: got %v", out)
	}
	// Same flip restores (XOR involution).
	out = Fault{Kind: BitFlip, Offset: 2, Bit: 0x10}.Apply(out)
	if out[2] != 0 {
		t.Errorf("double flip: got %v", out)
	}
	out = Fault{Kind: Truncate, Len: 2}.Apply([]byte{1, 2, 3, 4})
	if len(out) != 2 {
		t.Errorf("truncate: len %d", len(out))
	}
	// Truncation never returns the full slice for non-empty input.
	out = Fault{Kind: Truncate, Len: 99}.Apply([]byte{1, 2, 3})
	if len(out) != 2 {
		t.Errorf("clipped truncate: len %d", len(out))
	}
	// Out-of-range flips clip instead of panicking.
	out = Fault{Kind: BitFlip, Offset: 50}.Apply([]byte{0})
	if out[0] == 0 {
		t.Error("clipped flip did nothing")
	}
	if got := (Fault{Kind: BitFlip}).Apply(nil); len(got) != 0 {
		t.Error("nil data mutated")
	}
}

func TestCkptAbortFractionInterior(t *testing.T) {
	p := MustCompile(Spec{CkptAbortRate: 1}, 9, "frac")
	for seq := 0; seq < 200; seq++ {
		frac, ok := p.CkptAbort(2, seq)
		if !ok {
			t.Fatal("rate-1 abort did not fire")
		}
		if frac <= 0 || frac >= 1 {
			t.Fatalf("fraction %g not interior", frac)
		}
	}
}

func TestRecoveryCrashClasses(t *testing.T) {
	p := MustCompile(Spec{RecoveryCrashRate: 1}, 5, "classes")
	seen := map[int]bool{}
	for e := 0; e < 200; e++ {
		class, ok := p.RecoveryCrash(e, 0)
		if !ok {
			t.Fatal("rate-1 recovery crash did not fire")
		}
		if class < 1 || class > 3 {
			t.Fatalf("class %d out of range", class)
		}
		seen[class] = true
	}
	if len(seen) != 3 {
		t.Errorf("classes seen: %v", seen)
	}
}

func TestCompileRejectsBadSpec(t *testing.T) {
	if _, err := Compile(Spec{TruncateFrac: -1}, 0, "x"); !errors.Is(err, ErrSpec) {
		t.Fatalf("err = %v", err)
	}
}

func ExamplePlan_SnapshotFault() {
	plan := MustCompile(Spec{CorruptRate: []float64{1, 0, 0, 0}}, 42, "example")
	fault, ok := plan.SnapshotFault(1, 3, 1, 64)
	fmt.Println(ok, fault.Kind)
	// Output: true bit-flip
}
