//go:build !amd64

package enc

// Off amd64 the byte order of the host is unknown, so the codecs spell
// the little-endian wire format out word by word.

//mlckpt:hotpath
func PutFloat64s(dst []byte, src []float64) {
	PutFloat64sGeneric(dst, src)
}

//mlckpt:hotpath
func GetFloat64s(dst []float64, src []byte) {
	GetFloat64sGeneric(dst, src)
}
