// Package enc is the bulk float64 wire codec shared by every
// serialization path in the repository: heat snapshots and ghost rows,
// and the mpisim float-payload messages. The wire format is little-endian
// IEEE-754 float64 words. On amd64 (enc_amd64.go) both directions
// degenerate to a single memmove because the wire format equals the
// in-memory layout; the portable versions below spell the byte order out
// and double as the differential oracle (TestCodecMatchesGeneric).
package enc

import (
	"encoding/binary"
	"math"
)

// PutFloat64sGeneric encodes src into dst (≥ 8·len(src) bytes) in wire
// order, one word at a time.
//
//mlckpt:hotpath
func PutFloat64sGeneric(dst []byte, src []float64) {
	dst = dst[: 8*len(src) : 8*len(src)]
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// GetFloat64sGeneric decodes src (≥ 8·len(dst) bytes) into dst, one word
// at a time.
//
//mlckpt:hotpath
func GetFloat64sGeneric(dst []float64, src []byte) {
	src = src[: 8*len(dst) : 8*len(dst)]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}
