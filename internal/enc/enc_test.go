package enc

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func randRow(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 100
	}
	return out
}

// TestCodecMatchesGeneric differentially tests the dispatched bulk codec
// against the spelled-out little-endian reference.
func TestCodecMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 2, 7, 8, 64, 1000} {
		src := randRow(rng, n)
		src = append(src[:0:0], src...)
		if n > 2 {
			src[1] = math.NaN()
			src[2] = math.Inf(-1)
		}
		want := make([]byte, 8*n+3) // over-long: codec must only touch the prefix
		got := make([]byte, 8*n+3)
		PutFloat64sGeneric(want, src)
		PutFloat64s(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: byte %d = %#x, want %#x", n, i, got[i], want[i])
			}
		}
		back := make([]float64, n)
		GetFloat64s(back, got)
		for i := range src {
			if math.Float64bits(back[i]) != math.Float64bits(src[i]) {
				t.Fatalf("n=%d: roundtrip [%d] = %v, want %v", n, i, back[i], src[i])
			}
		}
	}
}

// TestCodecWireFormat pins the wire format itself (little-endian IEEE-754
// words) against encoding/binary, independent of the generic codec.
func TestCodecWireFormat(t *testing.T) {
	src := []float64{0, -0.0, 1.5, math.Pi, math.Inf(1)}
	buf := make([]byte, 8*len(src))
	PutFloat64s(buf, src)
	for i, v := range src {
		if got := binary.LittleEndian.Uint64(buf[8*i:]); got != math.Float64bits(v) {
			t.Fatalf("word %d = %#x, want %#x", i, got, math.Float64bits(v))
		}
	}
}

// TestCodecZeroAlloc pins the codecs' zero-allocation contract.
func TestCodecZeroAlloc(t *testing.T) {
	src := randRow(rand.New(rand.NewSource(11)), 512)
	buf := make([]byte, 8*len(src))
	dst := make([]float64, len(src))
	if avg := testing.AllocsPerRun(50, func() {
		PutFloat64s(buf, src)
		GetFloat64s(dst, buf)
	}); avg != 0 {
		t.Errorf("codec allocates %.1f times per call pair", avg)
	}
}
