package enc

import "unsafe"

// amd64 is little-endian, so the codec wire format is byte-for-byte the
// in-memory layout of a []float64 and both directions reduce to one
// memmove. The unsafe view is taken over the float64 slice (always
// 8-aligned), never over the byte slice, so no alignment assumption is
// made about caller buffers.

// PutFloat64s encodes src into dst (≥ 8·len(src) bytes) in wire order.
//
//mlckpt:hotpath
func PutFloat64s(dst []byte, src []float64) {
	if len(src) == 0 {
		return
	}
	copy(dst[:8*len(src)], unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 8*len(src)))
}

// GetFloat64s decodes src (≥ 8·len(dst) bytes) into dst.
//
//mlckpt:hotpath
func GetFloat64s(dst []float64, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src[:8*len(dst)])
}
