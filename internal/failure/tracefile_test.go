package failure

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mlckpt/internal/stats"
)

func TestTraceRoundTrip(t *testing.T) {
	rates := MustParseRates("16-12-8-4", 1024)
	events := Trace(rates, 1024, 30*SecondsPerDay, Exponential, 0, stats.NewRNG(7))
	if len(events) == 0 {
		t.Fatal("empty sampled trace")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip length %d, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Level != events[i].Level {
			t.Fatalf("event %d level %d, want %d", i, got[i].Level, events[i].Level)
		}
		if diff := got[i].Time - events[i].Time; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("event %d time %g, want %g", i, got[i].Time, events[i].Time)
		}
	}
}

func TestTraceRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events, want 0", len(got))
	}
}

func TestWriteTraceRejectsUnsorted(t *testing.T) {
	events := []Event{{Time: 5, Level: 0}, {Time: 1, Level: 1}}
	if err := WriteTrace(&bytes.Buffer{}, events); !errors.Is(err, ErrTrace) {
		t.Fatalf("err = %v, want ErrTrace", err)
	}
}

func TestReadTraceStrict(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"not json":        "hello\n",
		"wrong format":    `{"format":"other","version":1,"events":0}` + "\n",
		"wrong version":   `{"format":"mlckpt-failure-trace","version":2,"events":0}` + "\n",
		"unknown field":   `{"format":"mlckpt-failure-trace","version":1,"events":1}` + "\n" + `{"t":1,"level":0,"extra":true}` + "\n",
		"negative level":  `{"format":"mlckpt-failure-trace","version":1,"events":1}` + "\n" + `{"t":1,"level":-1}` + "\n",
		"negative time":   `{"format":"mlckpt-failure-trace","version":1,"events":1}` + "\n" + `{"t":-1,"level":0}` + "\n",
		"unsorted":        `{"format":"mlckpt-failure-trace","version":1,"events":2}` + "\n" + `{"t":5,"level":0}` + "\n" + `{"t":1,"level":0}` + "\n",
		"truncated body":  `{"format":"mlckpt-failure-trace","version":1,"events":3}` + "\n" + `{"t":1,"level":0}` + "\n",
		"count too small": `{"format":"mlckpt-failure-trace","version":1,"events":0}` + "\n" + `{"t":1,"level":0}` + "\n",
	}
	for name, doc := range cases {
		if _, err := ReadTrace(strings.NewReader(doc)); !errors.Is(err, ErrTrace) {
			t.Errorf("%s: err = %v, want ErrTrace", name, err)
		}
	}
}

// TestWeibullSharedSampler pins the satellite fix: Trace and Process draw
// from one interarrival code path, so at the same seed the first Weibull
// arrival of a single-level scenario must be identical.
func TestWeibullSharedSampler(t *testing.T) {
	rates := MustParseRates("4", 64)
	const shape = 0.7
	proc := NewProcess(rates, 64, Weibull, shape, stats.NewRNG(11))
	ev, ok := proc.Next(0)
	if !ok {
		t.Fatal("process produced no event")
	}
	traced := Trace(rates, 64, ev.Time+1, Weibull, shape, stats.NewRNG(11))
	if len(traced) == 0 {
		t.Fatal("trace produced no event")
	}
	if traced[0].Time != ev.Time {
		t.Fatalf("first arrival differs: trace %g, process %g", traced[0].Time, ev.Time)
	}
}
