// Package failure models the per-level failure processes of the multilevel
// checkpoint model.
//
// Each checkpoint level i handles a distinct failure class (Section II):
// level 1 covers transient/software faults; levels 2..L cover progressively
// broader hardware-crash scenarios. The paper parameterizes a scenario as
// "r1-r2-…-rL": r_i failure events per day at level i when running at the
// baseline scale N_b, with the realized rate growing proportionally with
// the execution scale (Section IV-A):
//
//	λ_i(N) = r_i · N / N_b        [failures/day]
//
// Interarrival times are exponential ([37]); a Weibull option exists for
// the distribution ablation.
package failure

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mlckpt/internal/stats"
)

// SecondsPerDay converts the paper's failures-per-day rates to SI seconds.
const SecondsPerDay = 86400.0

// ErrSpec is returned for malformed failure-rate specifications.
var ErrSpec = errors.New("failure: invalid specification")

// Rates is a per-level failure-rate scenario: Rates.PerDay[i] failure events
// per day at level i (0-indexed) at the baseline scale Baseline.
type Rates struct {
	PerDay   []float64 // failures/day per level at the baseline scale
	Baseline float64   // N_b: scale at which PerDay was measured
}

// ParseRates parses the paper's "16-12-8-4" notation into a Rates value at
// the given baseline scale.
func ParseRates(spec string, baseline float64) (Rates, error) {
	if baseline <= 0 {
		return Rates{}, fmt.Errorf("%w: non-positive baseline %g", ErrSpec, baseline)
	}
	parts := strings.Split(strings.TrimSpace(spec), "-")
	if len(parts) == 0 || parts[0] == "" {
		return Rates{}, fmt.Errorf("%w: empty spec %q", ErrSpec, spec)
	}
	per := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Rates{}, fmt.Errorf("%w: level %d rate %q", ErrSpec, i+1, p)
		}
		per[i] = v
	}
	return Rates{PerDay: per, Baseline: baseline}, nil
}

// MustParseRates is ParseRates that panics on error; for tests and tables of
// literal scenarios.
func MustParseRates(spec string, baseline float64) Rates {
	r, err := ParseRates(spec, baseline)
	if err != nil {
		panic(err)
	}
	return r
}

// Levels returns the number of levels in the scenario.
func (r Rates) Levels() int { return len(r.PerDay) }

// PerSecondAt returns λ_i(N) in failures/second at level i (0-indexed) for
// an execution scale of n cores.
func (r Rates) PerSecondAt(i int, n float64) float64 {
	return r.PerDay[i] * n / r.Baseline / SecondsPerDay
}

// TotalPerSecondAt returns Σ_i λ_i(N) in failures/second: the rate the
// single-level model experiences, since every failure — whatever its class —
// forces a PFS-level restart there.
func (r Rates) TotalPerSecondAt(n float64) float64 {
	t := 0.0
	for i := range r.PerDay {
		t += r.PerSecondAt(i, n)
	}
	return t
}

// ExpectedFailures returns μ_i = λ_i(N)·duration for a wall-clock duration
// in seconds (Formula 22 under the μ_i(N) condition of Algorithm 1).
func (r Rates) ExpectedFailures(i int, n, durationSec float64) float64 {
	return r.PerSecondAt(i, n) * durationSec
}

// Spec renders the scenario back in the paper's "r1-r2-…" notation.
func (r Rates) Spec() string {
	parts := make([]string, len(r.PerDay))
	for i, v := range r.PerDay {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, "-")
}

// Distribution selects the interarrival law for sampled failure traces.
type Distribution int

// Supported interarrival distributions.
const (
	Exponential Distribution = iota // memoryless, the paper's default
	Weibull                         // shape < 1: infant-mortality regime
)

func (d Distribution) String() string {
	switch d {
	case Exponential:
		return "exponential"
	case Weibull:
		return "weibull"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// Event is one failure occurrence in a trace.
type Event struct {
	Time  float64 // seconds since execution start (wall clock)
	Level int     // 0-indexed checkpoint level whose class this failure belongs to
}

// Process samples failure events for one execution at a fixed scale.
type Process struct {
	rates Rates
	scale float64
	dist  Distribution
	shape float64 // Weibull shape when dist == Weibull
	rng   *stats.RNG
	next  []float64 // next pending arrival per level
}

// NewProcess creates a sampling process at scale n using the given RNG. For
// Weibull, shape must be positive; the scale parameter per level is chosen
// so the mean interarrival matches the exponential case (rate equivalence).
func NewProcess(r Rates, n float64, dist Distribution, shape float64, rng *stats.RNG) *Process {
	p := &Process{rates: r, scale: n, dist: dist, shape: shape, rng: rng}
	p.next = make([]float64, r.Levels())
	for i := range p.next {
		p.next[i] = p.sampleInterarrival(i)
	}
	return p
}

func (p *Process) sampleInterarrival(level int) float64 {
	return interarrival(p.rng, p.rates.PerSecondAt(level, p.scale), p.dist, p.shape)
}

// interarrival samples one interarrival time at the given rate under the
// chosen distribution. Process and Trace share this single code path so
// the Weibull mean-matching (scale = mean / Γ(1+1/shape), making the
// Weibull mean equal the exponential mean at the same rate) cannot drift
// between the two samplers.
func interarrival(rng *stats.RNG, rate float64, dist Distribution, shape float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	switch dist {
	case Weibull:
		mean := 1 / rate
		// Weibull mean = scale·Γ(1+1/shape); match means.
		scale := mean / math.Gamma(1+1/shape)
		return rng.Weibull(scale, shape)
	default:
		return rng.Exponential(rate)
	}
}

// Next returns the earliest pending failure event at or after time `from`
// and schedules that level's next arrival. Levels whose rate is zero never
// fire. The second return is false when no level can ever fail.
//
// For the exponential distribution the process is memoryless, so advancing
// `from` without consuming events does not bias arrivals; for Weibull the
// trace should be consumed in order.
func (p *Process) Next(from float64) (Event, bool) {
	best, lvl := math.Inf(1), -1
	for i, t := range p.next {
		if t < best {
			best, lvl = t, i
		}
	}
	if lvl < 0 || math.IsInf(best, 1) {
		return Event{}, false
	}
	// Arrivals are absolute times; push the chosen level forward.
	ev := Event{Time: best, Level: lvl}
	p.next[lvl] = best + p.sampleInterarrival(lvl)
	if ev.Time < from {
		// The caller skipped past this arrival (e.g. failures during an
		// ignored window); re-issue at the caller's horizon.
		ev.Time = from
	}
	return ev, true
}

// Trace samples all failures in [0, horizon) and returns them sorted by
// time. It is used by trace analysis and tests; the simulator consumes
// events one at a time via Next.
func Trace(r Rates, n, horizon float64, dist Distribution, shape float64, rng *stats.RNG) []Event {
	var out []Event
	for i := range r.PerDay {
		rate := r.PerSecondAt(i, n)
		if rate <= 0 {
			continue
		}
		t := 0.0
		for {
			t += interarrival(rng, rate, dist, shape)
			if t >= horizon {
				break
			}
			out = append(out, Event{Time: t, Level: i})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out
}

// CorrelatedWindows groups a sorted trace into windows of the given length
// (seconds) and returns the sizes of the groups with at least two events —
// the "simultaneous failure" clusters of the paper's footnote 1 (window
// lengths of 1–2 minutes in [17], [18]).
func CorrelatedWindows(events []Event, window float64) []int {
	var sizes []int
	i := 0
	for i < len(events) {
		j := i + 1
		for j < len(events) && events[j].Time-events[i].Time <= window {
			j++
		}
		if j-i >= 2 {
			sizes = append(sizes, j-i)
		}
		i = j
	}
	return sizes
}
