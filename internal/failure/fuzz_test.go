package failure

import (
	"strings"
	"testing"
)

// FuzzParseRates ensures the spec parser never panics and that every
// accepted spec round-trips through Spec().
func FuzzParseRates(f *testing.F) {
	f.Add("16-12-8-4")
	f.Add("4-2-1-0.5")
	f.Add("")
	f.Add("---")
	f.Add("1e3-2")
	f.Add("-1")
	f.Fuzz(func(t *testing.T, spec string) {
		r, err := ParseRates(spec, 1e6)
		if err != nil {
			return
		}
		// Accepted specs must be well-formed and reproducible.
		if r.Levels() == 0 {
			t.Fatalf("accepted spec %q has no levels", spec)
		}
		back, err := ParseRates(r.Spec(), 1e6)
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", spec, r.Spec(), err)
		}
		if back.Levels() != r.Levels() {
			t.Fatalf("round trip changed level count")
		}
		for i := range r.PerDay {
			if back.PerDay[i] != r.PerDay[i] {
				t.Fatalf("round trip changed rate %d", i)
			}
		}
		// Rates never negative; derived quantities finite.
		for i := range r.PerDay {
			if r.PerDay[i] < 0 {
				t.Fatalf("negative rate accepted: %q", spec)
			}
			if v := r.PerSecondAt(i, 5e5); v < 0 {
				t.Fatalf("negative per-second rate")
			}
		}
		_ = strings.Count(spec, "-")
	})
}
