package failure

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mlckpt/internal/stats"
)

func TestParseRates(t *testing.T) {
	r, err := ParseRates("16-12-8-4", 1e6)
	if err != nil {
		t.Fatalf("ParseRates: %v", err)
	}
	if r.Levels() != 4 {
		t.Fatalf("levels = %d", r.Levels())
	}
	want := []float64{16, 12, 8, 4}
	for i, w := range want {
		if r.PerDay[i] != w {
			t.Errorf("level %d rate = %g, want %g", i+1, r.PerDay[i], w)
		}
	}
	if r.Spec() != "16-12-8-4" {
		t.Errorf("Spec = %q", r.Spec())
	}
}

func TestParseRatesFractional(t *testing.T) {
	r, err := ParseRates("4-2-1-0.5", 1e6)
	if err != nil {
		t.Fatalf("ParseRates: %v", err)
	}
	if r.PerDay[3] != 0.5 {
		t.Errorf("level 4 rate = %g", r.PerDay[3])
	}
}

func TestParseRatesErrors(t *testing.T) {
	cases := []struct {
		spec     string
		baseline float64
	}{
		{"", 1e6},
		{"1-x-3", 1e6},
		{"1--3", 1e6},
		{"1-2", 0},
		{"-1-2", 1e6},
	}
	for _, tc := range cases {
		if _, err := ParseRates(tc.spec, tc.baseline); !errors.Is(err, ErrSpec) {
			t.Errorf("ParseRates(%q, %g) err = %v, want ErrSpec", tc.spec, tc.baseline, err)
		}
	}
}

func TestMustParseRatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseRates did not panic on bad input")
		}
	}()
	MustParseRates("bad", 1e6)
}

func TestRateScaling(t *testing.T) {
	r := MustParseRates("8-4-2-1", 1e6)
	// At the baseline scale the per-second rate is PerDay/86400.
	if got, want := r.PerSecondAt(0, 1e6), 8.0/86400; math.Abs(got-want) > 1e-15 {
		t.Errorf("PerSecondAt baseline = %g, want %g", got, want)
	}
	// Failure rates increase proportionally with the number of cores.
	if got, want := r.PerSecondAt(0, 5e5), 4.0/86400; math.Abs(got-want) > 1e-15 {
		t.Errorf("PerSecondAt half scale = %g, want %g", got, want)
	}
	// Total is the sum over levels — the single-level model's rate.
	if got, want := r.TotalPerSecondAt(1e6), 15.0/86400; math.Abs(got-want) > 1e-15 {
		t.Errorf("TotalPerSecondAt = %g, want %g", got, want)
	}
}

func TestExpectedFailures(t *testing.T) {
	r := MustParseRates("16-12-8-4", 1e6)
	// One day at baseline scale: μ_1 = 16.
	if got := r.ExpectedFailures(0, 1e6, SecondsPerDay); math.Abs(got-16) > 1e-12 {
		t.Errorf("μ_1 = %g, want 16", got)
	}
	// Half scale halves the expectation.
	if got := r.ExpectedFailures(3, 5e5, SecondsPerDay); math.Abs(got-2) > 1e-12 {
		t.Errorf("μ_4 at 500k = %g, want 2", got)
	}
}

func TestTraceRateRecovery(t *testing.T) {
	r := MustParseRates("16-12-8-4", 1e6)
	rng := stats.NewRNG(99)
	horizon := 30 * SecondsPerDay
	events := Trace(r, 1e6, horizon, Exponential, 0, rng)
	counts := make([]float64, 4)
	for _, e := range events {
		counts[e.Level]++
	}
	for i, want := range []float64{16, 12, 8, 4} {
		perDay := counts[i] / 30
		if math.Abs(perDay-want) > 0.15*want {
			t.Errorf("level %d empirical rate %.2f/day, want %g/day", i+1, perDay, want)
		}
	}
	// Trace must be sorted.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("trace not sorted")
		}
	}
}

func TestTraceZeroRateLevelNeverFires(t *testing.T) {
	r := MustParseRates("4-0-2", 1e6)
	rng := stats.NewRNG(7)
	events := Trace(r, 1e6, 100*SecondsPerDay, Exponential, 0, rng)
	for _, e := range events {
		if e.Level == 1 {
			t.Fatal("zero-rate level produced an event")
		}
	}
}

func TestTraceWeibullMeanMatchesExponential(t *testing.T) {
	r := MustParseRates("24", 1e6)
	expN := len(Trace(r, 1e6, 100*SecondsPerDay, Exponential, 0, stats.NewRNG(1)))
	weiN := len(Trace(r, 1e6, 100*SecondsPerDay, Weibull, 0.7, stats.NewRNG(2)))
	// Same mean interarrival: counts should agree within sampling noise.
	if math.Abs(float64(expN-weiN)) > 0.15*float64(expN) {
		t.Errorf("exponential %d vs weibull %d events over equal horizon", expN, weiN)
	}
}

func TestProcessNextOrdering(t *testing.T) {
	r := MustParseRates("16-12-8-4", 1e6)
	p := NewProcess(r, 1e6, Exponential, 0, stats.NewRNG(5))
	prev := 0.0
	for i := 0; i < 1000; i++ {
		ev, ok := p.Next(prev)
		if !ok {
			t.Fatal("process dried up")
		}
		if ev.Time < prev {
			t.Fatalf("event %d at %g before horizon %g", i, ev.Time, prev)
		}
		if ev.Level < 0 || ev.Level > 3 {
			t.Fatalf("bad level %d", ev.Level)
		}
		prev = ev.Time
	}
}

func TestProcessAllZeroRates(t *testing.T) {
	r := MustParseRates("0-0", 1e6)
	p := NewProcess(r, 1e6, Exponential, 0, stats.NewRNG(5))
	if _, ok := p.Next(0); ok {
		t.Error("zero-rate process produced an event")
	}
}

func TestProcessEmpiricalRates(t *testing.T) {
	r := MustParseRates("8-4", 1e6)
	p := NewProcess(r, 1e6, Exponential, 0, stats.NewRNG(11))
	horizon := 200 * SecondsPerDay
	counts := [2]float64{}
	t0 := 0.0
	for {
		ev, ok := p.Next(t0)
		if !ok || ev.Time > horizon {
			break
		}
		counts[ev.Level]++
		t0 = ev.Time
	}
	if math.Abs(counts[0]/200-8) > 1 {
		t.Errorf("level 1 rate %.2f/day, want 8", counts[0]/200)
	}
	if math.Abs(counts[1]/200-4) > 0.8 {
		t.Errorf("level 2 rate %.2f/day, want 4", counts[1]/200)
	}
}

func TestCorrelatedWindows(t *testing.T) {
	events := []Event{
		{Time: 0}, {Time: 30}, {Time: 45},
		{Time: 1000},
		{Time: 5000}, {Time: 5059},
	}
	sizes := CorrelatedWindows(events, 60)
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 2 {
		t.Errorf("sizes = %v, want [3 2]", sizes)
	}
	if s := CorrelatedWindows(nil, 60); s != nil {
		t.Errorf("empty trace gave %v", s)
	}
}

func TestDistributionString(t *testing.T) {
	if Exponential.String() != "exponential" || Weibull.String() != "weibull" {
		t.Error("distribution names wrong")
	}
}

// Property: interarrival times from Process at any positive scale are
// strictly positive and finite when at least one rate is positive.
func TestProcessProperty(t *testing.T) {
	prop := func(seed uint64, scaleRaw float64) bool {
		scale := 1e3 + math.Abs(math.Mod(scaleRaw, 1e6))
		r := MustParseRates("2-1", 1e6)
		p := NewProcess(r, scale, Exponential, 0, stats.NewRNG(seed))
		t0 := 0.0
		for i := 0; i < 50; i++ {
			ev, ok := p.Next(t0)
			if !ok || ev.Time < t0 || math.IsInf(ev.Time, 0) {
				return false
			}
			t0 = ev.Time
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: doubling the scale roughly doubles the event count over a long
// horizon (rates proportional to N).
func TestRateProportionalityProperty(t *testing.T) {
	r := MustParseRates("8-4-2-1", 1e6)
	n1 := len(Trace(r, 5e5, 100*SecondsPerDay, Exponential, 0, stats.NewRNG(21)))
	n2 := len(Trace(r, 1e6, 100*SecondsPerDay, Exponential, 0, stats.NewRNG(22)))
	ratio := float64(n2) / float64(n1)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("scale doubling produced event ratio %.2f, want ≈2", ratio)
	}
}
