package failure

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTrace is returned for malformed on-disk failure traces.
var ErrTrace = errors.New("failure: invalid trace file")

// Trace file format (JSONL): the first line is a header object pinning the
// format name and version, every following line is one failure event with
// a time in seconds and a 0-indexed level class. Events must be sorted by
// time, which is the order the simulator's replay path consumes them in.
const (
	// TraceFormat names the on-disk failure-trace format.
	TraceFormat = "mlckpt-failure-trace"
	// TraceVersion is the current format version. Readers reject any other
	// version rather than guessing: replaying a misread trace silently
	// changes reproduced results.
	TraceVersion = 1
)

// traceHeader is the first JSONL line of a trace file.
type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Events  int    `json:"events"`
}

// traceLine is the wire form of one Event.
type traceLine struct {
	T     float64 `json:"t"`
	Level int     `json:"level"`
}

// WriteTrace serializes events (which must be sorted by time) as versioned
// JSONL. The header records the event count so truncated files are
// detectable on read.
func WriteTrace(w io.Writer, events []Event) error {
	for i, ev := range events {
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) || ev.Time < 0 {
			return fmt.Errorf("%w: event %d time %g", ErrTrace, i, ev.Time)
		}
		if ev.Level < 0 {
			return fmt.Errorf("%w: event %d level %d", ErrTrace, i, ev.Level)
		}
		if i > 0 && ev.Time < events[i-1].Time {
			return fmt.Errorf("%w: events not sorted at index %d (%g after %g)",
				ErrTrace, i, ev.Time, events[i-1].Time)
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Format: TraceFormat, Version: TraceVersion, Events: len(events)}); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(traceLine{T: ev.Time, Level: ev.Level}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace. Decoding is strict:
// unknown fields, a foreign format name, a version other than
// TraceVersion, out-of-order or non-finite times, negative levels, and a
// header count that disagrees with the body are all errors.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty file", ErrTrace)
	}
	var hdr traceHeader
	if err := strictUnmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTrace, err)
	}
	if hdr.Format != TraceFormat {
		return nil, fmt.Errorf("%w: format %q, want %q", ErrTrace, hdr.Format, TraceFormat)
	}
	if hdr.Version != TraceVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrTrace, hdr.Version, TraceVersion)
	}
	if hdr.Events < 0 {
		return nil, fmt.Errorf("%w: negative event count %d", ErrTrace, hdr.Events)
	}
	events := make([]Event, 0, hdr.Events)
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var tl traceLine
		if err := strictUnmarshal(sc.Bytes(), &tl); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrTrace, line, err)
		}
		if math.IsNaN(tl.T) || math.IsInf(tl.T, 0) || tl.T < 0 {
			return nil, fmt.Errorf("%w: line %d: time %g", ErrTrace, line, tl.T)
		}
		if tl.Level < 0 {
			return nil, fmt.Errorf("%w: line %d: level %d", ErrTrace, line, tl.Level)
		}
		if n := len(events); n > 0 && tl.T < events[n-1].Time {
			return nil, fmt.Errorf("%w: line %d: time %g before previous %g",
				ErrTrace, line, tl.T, events[n-1].Time)
		}
		events = append(events, Event{Time: tl.T, Level: tl.Level})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(events) != hdr.Events {
		return nil, fmt.Errorf("%w: header says %d events, file holds %d (truncated?)",
			ErrTrace, hdr.Events, len(events))
	}
	return events, nil
}

// strictUnmarshal decodes one JSON document rejecting unknown fields and
// trailing garbage.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}
