// Command ckptopt computes an optimized multilevel checkpoint plan from a
// JSON problem specification.
//
// Usage:
//
//	ckptopt -spec problem.json [-policy ml-opt-scale] [-json]
//	ckptopt -paper -te 3e6 -rates 16-12-8-4 [-policy ...] [-json]
//
// With -paper, the spec is the paper's Section IV evaluation problem at
// the given workload (core-days) and failure case. Without -json the plan
// is printed as a human-readable summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"mlckpt"
	"mlckpt/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckptopt: ")
	var (
		specPath = flag.String("spec", "", "path to a JSON Spec")
		policy   = flag.String("policy", string(mlckpt.MLOptScale), "ml-opt-scale | sl-opt-scale | ml-ori-scale | sl-ori-scale")
		paper    = flag.Bool("paper", false, "use the paper's Section IV problem")
		te       = flag.Float64("te", 3e6, "workload in core-days (with -paper)")
		rates    = flag.String("rates", "16-12-8-4", "failure case r1-r2-r3-r4 (with -paper)")
		asJSON   = flag.Bool("json", false, "emit the plan as JSON")
	)
	flag.Parse()

	spec, err := cli.ResolveSpec(*paper, *specPath, *te, *rates)
	if err != nil {
		flag.Usage()
		log.Fatal(err)
	}

	plan, err := mlckpt.Optimize(spec, mlckpt.Policy(*policy))
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("policy:               %s\n", plan.Policy)
	fmt.Printf("optimal scale:        %d cores\n", plan.Scale)
	fmt.Printf("checkpoint intervals: %v (per level; 1 = no checkpoints)\n", plan.Intervals)
	fmt.Printf("expected wall clock:  %.2f days\n", plan.ExpectedWallClockDays)
	fmt.Printf("algorithm-1 iters:    %d (converged: %v)\n", plan.OuterIterations, plan.Converged)
}
