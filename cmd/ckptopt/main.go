// Command ckptopt computes optimized multilevel checkpoint plans from a
// JSON problem specification or the paper's evaluation problem.
//
// Usage:
//
//	ckptopt -spec problem.json [-policy ml-opt-scale] [-json]
//	ckptopt -paper -te 3e6 -rates 16-12-8-4 [-policy ...] [-json]
//	ckptopt -paper -rates 16-12-8-4,8-6-4-2 -policy all -sim 100 [-workers N]
//
// With -paper, the spec is the paper's Section IV evaluation problem at
// the given workload (core-days) and failure case. Without -json the plan
// is printed as a human-readable summary.
//
// Sweep mode: -rates takes a comma-separated list of failure cases and
// -policy accepts "all"; every (case, policy) cell is solved concurrently
// through mlckpt.Sweep. -sim N additionally validates each plan with N
// stochastic simulation runs. Sweep results are independent of -workers.
//
// Observability (off by default; see docs/OBSERVABILITY.md): -metrics-out
// writes a JSON metrics snapshot, -trace-out a Chrome trace-event timeline
// on virtual time (byte-identical for every -workers setting), and -pprof
// serves net/http/pprof on an address or writes cpu/heap profiles to a
// directory. Both export flags cover the single-cell path too — a single
// ckptopt run is just a one-job sweep. -serve ADDR exposes live telemetry
// while running (/metrics OpenMetrics, /healthz, /events SSE off the
// streaming flight recorder, /debug/pprof); serving perturbs only the
// volatile metrics section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mlckpt"
	"mlckpt/internal/cli"
	"mlckpt/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckptopt: ")
	var (
		specPath   = flag.String("spec", "", "path to a JSON Spec")
		policy     = flag.String("policy", string(mlckpt.MLOptScale), "ml-opt-scale | sl-opt-scale | ml-ori-scale | sl-ori-scale | all")
		paper      = flag.Bool("paper", false, "use the paper's Section IV problem")
		te         = flag.Float64("te", 3e6, "workload in core-days (with -paper)")
		rates      = flag.String("rates", "16-12-8-4", "failure case(s) r1-r2-r3-r4, comma-separated (with -paper)")
		simRuns    = flag.Int("sim", 0, "validate each plan with N simulation runs (sweep mode)")
		seed       = flag.Uint64("seed", 0, "root seed for -sim (0 = default)")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = all CPUs)")
		asJSON     = flag.Bool("json", false, "emit results as JSON")
		metricsOut = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file")
		pprofFlag  = flag.String("pprof", "", "serve net/http/pprof on addr (host:port) or write cpu/heap profiles to a directory")
		serveAddr  = flag.String("serve", "", "serve live telemetry on addr while running (/metrics OpenMetrics, /healthz, /events, /debug/pprof)")
	)
	flag.Parse()

	if *pprofFlag != "" {
		stop, err := cli.StartPprof(*pprofFlag)
		if err != nil {
			log.Fatalf("-pprof %s: %v", *pprofFlag, err)
		}
		defer stop()
	}
	collector := obs.NewCollector()
	// -serve mirrors cmd/experiments: the flight recorder observes beside
	// the collector (Tee), and serving only touches volatile metrics, so
	// exported artifacts match an unserved run's deterministic section.
	rec := obs.Recorder(collector)
	if *serveAddr != "" {
		stream := obs.NewStream(0)
		rec = obs.Tee(collector, stream)
		ln, err := cli.Serve(*serveAddr, cli.ObsMux(collector, stream))
		if err != nil {
			log.Fatalf("-serve %s: %v", *serveAddr, err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "ckptopt: serving telemetry on http://%s\n", ln.Addr())
	}
	writeArtifacts := func() {
		if *metricsOut != "" {
			if err := cli.WriteMetrics(collector.Registry, *metricsOut); err != nil {
				log.Fatalf("-metrics-out %s: %v", *metricsOut, err)
			}
		}
		if *traceOut != "" {
			if err := cli.WriteTrace(collector.Trace, *traceOut); err != nil {
				log.Fatalf("-trace-out %s: %v", *traceOut, err)
			}
		}
	}

	rateCases := strings.Split(*rates, ",")
	policies := []mlckpt.Policy{mlckpt.Policy(*policy)}
	if *policy == "all" {
		policies = mlckpt.Policies
	}

	// The classic single-cell path keeps its original plain-text report but
	// runs as a one-job sweep so -metrics-out/-trace-out see the solver.
	if len(rateCases) == 1 && len(policies) == 1 && *simRuns == 0 {
		spec, err := cli.ResolveSpec(*paper, *specPath, *te, rateCases[0])
		if err != nil {
			flag.Usage()
			log.Fatal(err)
		}
		outcomes := mlckpt.Sweep(
			[]mlckpt.SweepJob{{Spec: spec, Policy: policies[0]}},
			mlckpt.SweepOptions{Obs: rec, Clock: obs.WallClock},
		)
		if err := outcomes[0].Err; err != nil {
			log.Fatal(err)
		}
		plan := outcomes[0].Plan
		writeArtifacts()
		if *asJSON {
			emitJSON(plan)
			return
		}
		fmt.Printf("policy:               %s\n", plan.Policy)
		fmt.Printf("optimal scale:        %d cores\n", plan.Scale)
		fmt.Printf("checkpoint intervals: %v (per level; 1 = no checkpoints)\n", plan.Intervals)
		fmt.Printf("expected wall clock:  %.2f days\n", plan.ExpectedWallClockDays)
		fmt.Printf("algorithm-1 iters:    %d (converged: %v)\n", plan.OuterIterations, plan.Converged)
		return
	}

	// Sweep mode: one job per (failure case, policy).
	var jobs []mlckpt.SweepJob
	for _, rc := range rateCases {
		rc = strings.TrimSpace(rc)
		spec, err := cli.ResolveSpec(*paper, *specPath, *te, rc)
		if err != nil {
			flag.Usage()
			log.Fatal(err)
		}
		label := rc
		if !*paper {
			label = *specPath
		}
		for _, pol := range policies {
			job := mlckpt.SweepJob{
				Name:   fmt.Sprintf("%s/%s", label, pol),
				Spec:   spec,
				Policy: pol,
			}
			if *simRuns > 0 {
				job.Sim = &mlckpt.SimOptions{Runs: *simRuns}
			}
			jobs = append(jobs, job)
		}
	}
	outcomes := mlckpt.Sweep(jobs, mlckpt.SweepOptions{
		Workers:  *workers,
		RootSeed: *seed,
		Progress: cli.Progress(os.Stderr, "sweep"),
		Obs:      rec,
		Clock:    obs.WallClock,
	})
	failed := 0
	for _, o := range outcomes {
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: %v\n", o.Name, o.Err)
		}
	}
	if failed == 0 {
		writeArtifacts()
	} else if *metricsOut != "" || *traceOut != "" {
		fmt.Fprintln(os.Stderr, "telemetry artifacts withheld (incomplete sweep)")
	}
	if *asJSON {
		emitJSON(outcomes)
	} else {
		renderSweep(outcomes, *simRuns > 0)
	}
	if failed > 0 {
		log.Fatalf("%d of %d jobs failed", failed, len(outcomes))
	}
}

func renderSweep(outcomes []mlckpt.SweepOutcome, withSim bool) {
	if withSim {
		fmt.Printf("%-28s %-14s %8s %-18s %12s %14s %12s\n",
			"case/policy", "policy", "scale", "intervals", "E[WCT] days", "sim WCT days", "efficiency")
	} else {
		fmt.Printf("%-28s %-14s %8s %-18s %12s\n",
			"case/policy", "policy", "scale", "intervals", "E[WCT] days")
	}
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Printf("%-28s ERROR: %v\n", o.Name, o.Err)
			continue
		}
		iv := make([]string, len(o.Plan.Intervals))
		for i, v := range o.Plan.Intervals {
			iv[i] = fmt.Sprint(v)
		}
		row := fmt.Sprintf("%-28s %-14s %8d %-18s %12.2f",
			o.Name, o.Policy, o.Plan.Scale, strings.Join(iv, "-"), o.Plan.ExpectedWallClockDays)
		if withSim && o.Report != nil {
			row += fmt.Sprintf(" %14.2f %12.4f", o.Report.MeanWallClockDays, o.Report.Efficiency)
		}
		fmt.Println(row)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
