// Command ckptopt computes optimized multilevel checkpoint plans from a
// JSON problem specification or the paper's evaluation problem.
//
// Usage:
//
//	ckptopt -spec problem.json [-policy ml-opt-scale] [-json]
//	ckptopt -paper -te 3e6 -rates 16-12-8-4 [-policy ...] [-json]
//	ckptopt -paper -rates 16-12-8-4,8-6-4-2 -policy all -sim 100 [-workers N]
//
// With -paper, the spec is the paper's Section IV evaluation problem at
// the given workload (core-days) and failure case. Without -json the plan
// is printed as a human-readable summary.
//
// Sweep mode: -rates takes a comma-separated list of failure cases and
// -policy accepts "all"; every (case, policy) cell is solved concurrently
// through mlckpt.Sweep. -sim N additionally validates each plan with N
// stochastic simulation runs. Sweep results are independent of -workers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mlckpt"
	"mlckpt/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckptopt: ")
	var (
		specPath = flag.String("spec", "", "path to a JSON Spec")
		policy   = flag.String("policy", string(mlckpt.MLOptScale), "ml-opt-scale | sl-opt-scale | ml-ori-scale | sl-ori-scale | all")
		paper    = flag.Bool("paper", false, "use the paper's Section IV problem")
		te       = flag.Float64("te", 3e6, "workload in core-days (with -paper)")
		rates    = flag.String("rates", "16-12-8-4", "failure case(s) r1-r2-r3-r4, comma-separated (with -paper)")
		simRuns  = flag.Int("sim", 0, "validate each plan with N simulation runs (sweep mode)")
		seed     = flag.Uint64("seed", 0, "root seed for -sim (0 = default)")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = all CPUs)")
		asJSON   = flag.Bool("json", false, "emit results as JSON")
	)
	flag.Parse()

	rateCases := strings.Split(*rates, ",")
	policies := []mlckpt.Policy{mlckpt.Policy(*policy)}
	if *policy == "all" {
		policies = mlckpt.Policies
	}

	// The classic single-cell path keeps its original plain-text report.
	if len(rateCases) == 1 && len(policies) == 1 && *simRuns == 0 {
		spec, err := cli.ResolveSpec(*paper, *specPath, *te, rateCases[0])
		if err != nil {
			flag.Usage()
			log.Fatal(err)
		}
		plan, err := mlckpt.Optimize(spec, policies[0])
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			emitJSON(plan)
			return
		}
		fmt.Printf("policy:               %s\n", plan.Policy)
		fmt.Printf("optimal scale:        %d cores\n", plan.Scale)
		fmt.Printf("checkpoint intervals: %v (per level; 1 = no checkpoints)\n", plan.Intervals)
		fmt.Printf("expected wall clock:  %.2f days\n", plan.ExpectedWallClockDays)
		fmt.Printf("algorithm-1 iters:    %d (converged: %v)\n", plan.OuterIterations, plan.Converged)
		return
	}

	// Sweep mode: one job per (failure case, policy).
	var jobs []mlckpt.SweepJob
	for _, rc := range rateCases {
		rc = strings.TrimSpace(rc)
		spec, err := cli.ResolveSpec(*paper, *specPath, *te, rc)
		if err != nil {
			flag.Usage()
			log.Fatal(err)
		}
		label := rc
		if !*paper {
			label = *specPath
		}
		for _, pol := range policies {
			job := mlckpt.SweepJob{
				Name:   fmt.Sprintf("%s/%s", label, pol),
				Spec:   spec,
				Policy: pol,
			}
			if *simRuns > 0 {
				job.Sim = &mlckpt.SimOptions{Runs: *simRuns}
			}
			jobs = append(jobs, job)
		}
	}
	outcomes := mlckpt.Sweep(jobs, mlckpt.SweepOptions{
		Workers:  *workers,
		RootSeed: *seed,
		Progress: func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "\r\033[K%d/%d %s", done, total, name)
			if done == total {
				fmt.Fprintf(os.Stderr, "\r\033[K")
			}
		},
	})
	failed := 0
	for _, o := range outcomes {
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: %v\n", o.Name, o.Err)
		}
	}
	if *asJSON {
		emitJSON(outcomes)
	} else {
		renderSweep(outcomes, *simRuns > 0)
	}
	if failed > 0 {
		log.Fatalf("%d of %d jobs failed", failed, len(outcomes))
	}
}

func renderSweep(outcomes []mlckpt.SweepOutcome, withSim bool) {
	if withSim {
		fmt.Printf("%-28s %-14s %8s %-18s %12s %14s %12s\n",
			"case/policy", "policy", "scale", "intervals", "E[WCT] days", "sim WCT days", "efficiency")
	} else {
		fmt.Printf("%-28s %-14s %8s %-18s %12s\n",
			"case/policy", "policy", "scale", "intervals", "E[WCT] days")
	}
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Printf("%-28s ERROR: %v\n", o.Name, o.Err)
			continue
		}
		iv := make([]string, len(o.Plan.Intervals))
		for i, v := range o.Plan.Intervals {
			iv[i] = fmt.Sprint(v)
		}
		row := fmt.Sprintf("%-28s %-14s %8d %-18s %12.2f",
			o.Name, o.Policy, o.Plan.Scale, strings.Join(iv, "-"), o.Plan.ExpectedWallClockDays)
		if withSim && o.Report != nil {
			row += fmt.Sprintf(" %14.2f %12.4f", o.Report.MeanWallClockDays, o.Report.Efficiency)
		}
		fmt.Println(row)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
