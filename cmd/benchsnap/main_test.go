package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mlckpt
cpu: some CPU @ 2.4GHz
BenchmarkFig2-8   	       1	 123456789 ns/op	    4096 B/op	      12 allocs/op
BenchmarkFig1-8   	       2	  98765432 ns/op
--- SKIP: BenchmarkTab4
    bench_test.go:133: skipped in -short mode
PASS
ok  	mlckpt	1.234s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	// Sorted by name: Fig1 before Fig2.
	if results[0].Name != "BenchmarkFig1-8" || results[1].Name != "BenchmarkFig2-8" {
		t.Errorf("wrong order: %s, %s", results[0].Name, results[1].Name)
	}
	fig1 := results[0]
	if fig1.Iterations != 2 || fig1.NsPerOp != 98765432 {
		t.Errorf("Fig1 = %+v", fig1)
	}
	if fig1.BytesPerOp != nil || fig1.AllocsPerOp != nil {
		t.Error("Fig1 has memory stats; line had none")
	}
	fig2 := results[1]
	if fig2.NsPerOp != 123456789 {
		t.Errorf("Fig2 ns/op = %g", fig2.NsPerOp)
	}
	if fig2.BytesPerOp == nil || *fig2.BytesPerOp != 4096 {
		t.Errorf("Fig2 B/op = %v", fig2.BytesPerOp)
	}
	if fig2.AllocsPerOp == nil || *fig2.AllocsPerOp != 12 {
		t.Errorf("Fig2 allocs/op = %v", fig2.AllocsPerOp)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFig2-8":            "BenchmarkFig2",
		"BenchmarkFig2":              "BenchmarkFig2",
		"BenchmarkEncode/8+2-16":     "BenchmarkEncode/8+2",
		"BenchmarkAblationDamping/0": "BenchmarkAblationDamping/0",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func i64(v int64) *int64 { return &v }

func TestCompareRuns(t *testing.T) {
	baseline := []benchResult{
		{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: i64(100)},
		{Name: "BenchmarkB-8", NsPerOp: 1000},
		{Name: "BenchmarkGone-8", NsPerOp: 5},
	}
	current := []benchResult{
		{Name: "BenchmarkA", NsPerOp: 1100, AllocsPerOp: i64(100)}, // +10%: within threshold
		{Name: "BenchmarkB", NsPerOp: 1500},                        // +50%: regression
		{Name: "BenchmarkNew", NsPerOp: 7},
	}
	deltas, onlyOld, onlyNew := compareRuns(baseline, current, 20)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	if deltas[0].name != "BenchmarkA" || deltas[0].regression {
		t.Errorf("BenchmarkA should pass at +10%%: %+v", deltas[0])
	}
	if !deltas[0].hasAllocs || deltas[0].allocsPct != 0 {
		t.Errorf("BenchmarkA allocs delta = %+v", deltas[0])
	}
	if deltas[1].name != "BenchmarkB" || !deltas[1].regression {
		t.Errorf("BenchmarkB should regress at +50%%: %+v", deltas[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

func TestCompareRunsAllocRegression(t *testing.T) {
	baseline := []benchResult{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: i64(100)}}
	current := []benchResult{{Name: "BenchmarkA", NsPerOp: 900, AllocsPerOp: i64(200)}}
	deltas, _, _ := compareRuns(baseline, current, 20)
	if len(deltas) != 1 || !deltas[0].regression {
		t.Fatalf("doubling allocs/op must regress even when ns/op improved: %+v", deltas)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/base.json"
	base := snapshot{
		Schema: schema,
		Benchmarks: []benchResult{
			{Name: "BenchmarkA", NsPerOp: 1000},
			{Name: "BenchmarkB", NsPerOp: 1000},
		},
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	current := []benchResult{
		{Name: "BenchmarkA", NsPerOp: 1050},
		{Name: "BenchmarkB", NsPerOp: 9000},
	}
	var buf strings.Builder
	regressions, err := runCompare(&buf, path, current, 50)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("got %d regressions, want 1; output:\n%s", regressions, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "!! BenchmarkB") {
		t.Errorf("regressed benchmark not flagged:\n%s", out)
	}
	if !strings.Contains(out, "2 benchmarks compared, 1 regressed") {
		t.Errorf("missing summary line:\n%s", out)
	}

	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(&buf, path, current, 50); err == nil {
		t.Error("foreign schema must be rejected")
	}
}

// writeSnapshot persists a snapshot document and returns its path.
func writeSnapshot(t *testing.T, dir, name string, snap snapshot) string {
	t.Helper()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/" + name
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTrend(t *testing.T) {
	dir := t.TempDir()
	first := writeSnapshot(t, dir, "BENCH_2026-01-01.json", snapshot{
		Schema: schema,
		Benchmarks: []benchResult{
			{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: i64(100)},
			{Name: "BenchmarkGone-8", NsPerOp: 5},
		},
	})
	last := writeSnapshot(t, dir, "BENCH_2026-02-01.json", snapshot{
		Schema: schema,
		Benchmarks: []benchResult{
			{Name: "BenchmarkA", NsPerOp: 500, AllocsPerOp: i64(150)},
			{Name: "BenchmarkNew", NsPerOp: 7},
		},
	})
	var buf strings.Builder
	if err := runTrend(&buf, []string{first, last}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// GOMAXPROCS suffixes normalize away, so A matches across snapshots.
	if !strings.Contains(out, "-50.0%") || !strings.Contains(out, "+50.0%") {
		t.Errorf("missing first-to-last deltas (ns -50%%, allocs +50%%):\n%s", out)
	}
	// Column headers come from the file names, stripped of BENCH_/.json.
	if !strings.Contains(out, "2026-01-01") || !strings.Contains(out, "2026-02-01") {
		t.Errorf("missing snapshot labels:\n%s", out)
	}
	// Benchmarks absent from one snapshot render "-" and skip the deltas.
	for _, name := range []string{"BenchmarkGone", "BenchmarkNew"} {
		line := lineWith(out, name)
		if line == "" || !strings.Contains(line, "-") || strings.Contains(line, "%") {
			t.Errorf("%s should show a placeholder and no delta: %q", name, line)
		}
	}
	if !strings.Contains(out, "3 benchmarks across 2 snapshots") {
		t.Errorf("missing footer:\n%s", out)
	}
}

func TestRunTrendErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeSnapshot(t, dir, "ok.json", snapshot{Schema: schema})
	if err := runTrend(io.Discard, []string{good}); err == nil {
		t.Error("one file must be rejected (-trend needs a trajectory)")
	}
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTrend(io.Discard, []string{good, bad}); err == nil {
		t.Error("foreign schema must be rejected")
	}
}

// lineWith returns the first output line containing substr.
func lineWith(out, substr string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return ""
}

func TestParseBenchLineRejectsJunk(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	mlckpt	1.2s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoUnit-8 3 14",
		"--- SKIP: BenchmarkTab4",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted junk line %q", line)
		}
	}
}
