package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mlckpt
cpu: some CPU @ 2.4GHz
BenchmarkFig2-8   	       1	 123456789 ns/op	    4096 B/op	      12 allocs/op
BenchmarkFig1-8   	       2	  98765432 ns/op
--- SKIP: BenchmarkTab4
    bench_test.go:133: skipped in -short mode
PASS
ok  	mlckpt	1.234s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	// Sorted by name: Fig1 before Fig2.
	if results[0].Name != "BenchmarkFig1-8" || results[1].Name != "BenchmarkFig2-8" {
		t.Errorf("wrong order: %s, %s", results[0].Name, results[1].Name)
	}
	fig1 := results[0]
	if fig1.Iterations != 2 || fig1.NsPerOp != 98765432 {
		t.Errorf("Fig1 = %+v", fig1)
	}
	if fig1.BytesPerOp != nil || fig1.AllocsPerOp != nil {
		t.Error("Fig1 has memory stats; line had none")
	}
	fig2 := results[1]
	if fig2.NsPerOp != 123456789 {
		t.Errorf("Fig2 ns/op = %g", fig2.NsPerOp)
	}
	if fig2.BytesPerOp == nil || *fig2.BytesPerOp != 4096 {
		t.Errorf("Fig2 B/op = %v", fig2.BytesPerOp)
	}
	if fig2.AllocsPerOp == nil || *fig2.AllocsPerOp != 12 {
		t.Errorf("Fig2 allocs/op = %v", fig2.AllocsPerOp)
	}
}

func TestParseBenchLineRejectsJunk(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	mlckpt	1.2s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoUnit-8 3 14",
		"--- SKIP: BenchmarkTab4",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted junk line %q", line)
		}
	}
}
