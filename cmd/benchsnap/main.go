// Command benchsnap converts `go test -bench` text output into a stable
// JSON snapshot, so benchmark baselines can be diffed and tracked in git
// without depending on external benchstat tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchsnap > BENCH.json
//
// Benchmarks are sorted by name in the output; lines that are not
// benchmark results (package headers, PASS/ok, skips) are ignored. Exit
// status 1 means no benchmark lines were found — an upstream failure
// (compile error, -run filter eating everything) rather than a slow day.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. B/op and allocs/op are
// pointers: they are only present when the run used -benchmem.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// snapshot is the document benchsnap emits.
type snapshot struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

const schema = "mlckpt.bench/v1"

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFig2-8       1    123456789 ns/op    4096 B/op    12 allocs/op
//
// and reports ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iterations: iters}
	// The remainder is (value, unit) pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return benchResult{}, false
			}
			r.NsPerOp = v
			seen = true
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return benchResult{}, false
			}
			r.BytesPerOp = &v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return benchResult{}, false
			}
			r.AllocsPerOp = &v
		}
	}
	if !seen {
		return benchResult{}, false
	}
	return r, true
}

// parseBench reads `go test -bench` output and returns the sorted results.
func parseBench(in io.Reader) ([]benchResult, error) {
	var results []benchResult
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseBenchLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsnap: ")
	results, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin (did the bench run fail?)")
	}
	doc := snapshot{
		Schema:     schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
