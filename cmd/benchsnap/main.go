// Command benchsnap converts `go test -bench` text output into a stable
// JSON snapshot, so benchmark baselines can be diffed and tracked in git
// without depending on external benchstat tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchsnap > BENCH.json
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchsnap -compare BENCH.json -threshold 50
//
// Benchmarks are sorted by name in the output; lines that are not
// benchmark results (package headers, PASS/ok, skips) are ignored. Exit
// status 1 means no benchmark lines were found — an upstream failure
// (compile error, -run filter eating everything) rather than a slow day.
//
// With -compare, benchsnap instead diffs the run on stdin against a
// committed baseline snapshot: benchmarks are matched by name (ignoring
// the -N GOMAXPROCS suffix, so snapshots from different machines
// compare), ns/op and allocs/op deltas are printed for every common
// benchmark, and the exit status is 1 when any benchmark regressed by
// more than -threshold percent. Benchmarks present on only one side are
// reported but never fail the comparison — new benchmarks appear and old
// ones retire without invalidating the baseline. Wall-clock thresholds
// should be generous (CI machines are noisy); allocs/op is deterministic
// and uses the same bound only to absorb intentional small drifts.
//
// With -trend, benchsnap reads nothing from stdin and instead renders the
// history across several committed snapshots in argument order:
//
//	go run ./cmd/benchsnap -trend BENCH_2026-08-06.json BENCH_2026-08-06.r2.json
//
// Each benchmark gets one row of ns/op values (one column per snapshot)
// plus the allocs/op trajectory, with the relative change from the first
// to the last snapshot. Benchmarks missing from a snapshot show "-" —
// appearing and retiring benchmarks are part of the history, not an
// error. Exit status 1 only for unreadable or schema-mismatched files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. B/op and allocs/op are
// pointers: they are only present when the run used -benchmem.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// snapshot is the document benchsnap emits.
type snapshot struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

const schema = "mlckpt.bench/v1"

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFig2-8       1    123456789 ns/op    4096 B/op    12 allocs/op
//
// and reports ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iterations: iters}
	// The remainder is (value, unit) pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return benchResult{}, false
			}
			r.NsPerOp = v
			seen = true
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return benchResult{}, false
			}
			r.BytesPerOp = &v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return benchResult{}, false
			}
			r.AllocsPerOp = &v
		}
	}
	if !seen {
		return benchResult{}, false
	}
	return r, true
}

// parseBench reads `go test -bench` output and returns the sorted results.
func parseBench(in io.Reader) ([]benchResult, error) {
	var results []benchResult
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseBenchLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

// normalizeName strips the trailing -N GOMAXPROCS suffix go test appends
// on multi-core hosts, so snapshots taken on different machines compare.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// delta is one benchmark's comparison against the baseline.
type delta struct {
	name       string
	oldNs      float64
	newNs      float64
	nsPct      float64 // signed percent change in ns/op
	allocsPct  float64 // signed percent change in allocs/op (0 when absent)
	hasAllocs  bool
	regression bool
}

// compareRuns diffs current results against a baseline. A benchmark
// regresses when ns/op or allocs/op grew by more than thresholdPct. The
// returned slices are the matched deltas plus the names present on only
// one side, all sorted by name.
func compareRuns(baseline, current []benchResult, thresholdPct float64) (deltas []delta, onlyOld, onlyNew []string) {
	old := make(map[string]benchResult, len(baseline))
	for _, r := range baseline {
		old[normalizeName(r.Name)] = r
	}
	seen := make(map[string]bool, len(current))
	for _, r := range current {
		name := normalizeName(r.Name)
		seen[name] = true
		b, ok := old[name]
		if !ok {
			onlyNew = append(onlyNew, name)
			continue
		}
		d := delta{name: name, oldNs: b.NsPerOp, newNs: r.NsPerOp}
		if b.NsPerOp > 0 {
			d.nsPct = 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		if b.AllocsPerOp != nil && r.AllocsPerOp != nil && *b.AllocsPerOp > 0 {
			d.hasAllocs = true
			d.allocsPct = 100 * float64(*r.AllocsPerOp-*b.AllocsPerOp) / float64(*b.AllocsPerOp)
		}
		d.regression = d.nsPct > thresholdPct || (d.hasAllocs && d.allocsPct > thresholdPct)
		deltas = append(deltas, d)
	}
	for _, r := range baseline {
		if name := normalizeName(r.Name); !seen[name] {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].name < deltas[j].name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// runCompare executes -compare mode and returns the number of regressions.
func runCompare(w io.Writer, baselinePath string, current []benchResult, thresholdPct float64) (int, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, err
	}
	var base snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	if base.Schema != schema {
		return 0, fmt.Errorf("%s: unexpected schema %q (want %q)", baselinePath, base.Schema, schema)
	}
	deltas, onlyOld, onlyNew := compareRuns(base.Benchmarks, current, thresholdPct)
	regressions := 0
	for _, d := range deltas {
		mark := "  "
		if d.regression {
			mark = "!!"
			regressions++
		}
		line := fmt.Sprintf("%s %-50s %14.0f -> %14.0f ns/op  %+7.1f%%", mark, d.name, d.oldNs, d.newNs, d.nsPct)
		if d.hasAllocs {
			line += fmt.Sprintf("  allocs %+7.1f%%", d.allocsPct)
		}
		fmt.Fprintln(w, line)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(w, "   %-50s only in baseline\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "   %-50s only in current run\n", name)
	}
	fmt.Fprintf(w, "%d benchmarks compared, %d regressed (threshold %+.0f%%)\n", len(deltas), regressions, thresholdPct)
	return regressions, nil
}

// loadSnapshot reads and schema-checks one committed snapshot file.
func loadSnapshot(path string) (snapshot, error) {
	var snap snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, fmt.Errorf("parse %s: %w", path, err)
	}
	if snap.Schema != schema {
		return snap, fmt.Errorf("%s: unexpected schema %q (want %q)", path, snap.Schema, schema)
	}
	return snap, nil
}

// runTrend renders the ns/op and allocs/op trajectories across the given
// snapshot files, in argument order.
func runTrend(w io.Writer, paths []string) error {
	if len(paths) < 2 {
		return fmt.Errorf("-trend needs at least two snapshot files, got %d", len(paths))
	}
	snaps := make([]snapshot, len(paths))
	for i, path := range paths {
		s, err := loadSnapshot(path)
		if err != nil {
			return err
		}
		snaps[i] = s
	}
	// Collect the union of normalized names, keeping per-snapshot lookups.
	type point struct {
		ns     float64
		allocs *int64
		ok     bool
	}
	byName := map[string][]point{}
	var names []string
	for i, s := range snaps {
		for _, b := range s.Benchmarks {
			name := normalizeName(b.Name)
			pts, seen := byName[name]
			if !seen {
				pts = make([]point, len(snaps))
				byName[name] = pts
				names = append(names, name)
			}
			pts[i] = point{ns: b.NsPerOp, allocs: b.AllocsPerOp, ok: true}
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-50s", "benchmark")
	for _, path := range paths {
		fmt.Fprintf(w, " %14s", trendLabel(path))
	}
	fmt.Fprintf(w, " %9s %9s\n", "ns Δ%", "allocs Δ%")
	for _, name := range names {
		pts := byName[name]
		fmt.Fprintf(w, "%-50s", name)
		for _, p := range pts {
			if !p.ok {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			fmt.Fprintf(w, " %14.0f", p.ns)
		}
		first, last := pts[0], pts[len(pts)-1]
		if first.ok && last.ok && first.ns > 0 {
			fmt.Fprintf(w, " %+8.1f%%", 100*(last.ns-first.ns)/first.ns)
		} else {
			fmt.Fprintf(w, " %9s", "-")
		}
		if first.ok && last.ok && first.allocs != nil && last.allocs != nil && *first.allocs > 0 {
			fmt.Fprintf(w, " %+8.1f%%", 100*float64(*last.allocs-*first.allocs)/float64(*first.allocs))
		} else {
			fmt.Fprintf(w, " %9s", "-")
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%d benchmarks across %d snapshots\n", len(names), len(snaps))
	return nil
}

// trendLabel shortens a snapshot path to a column header: the base name
// without the BENCH_ prefix and .json suffix.
func trendLabel(path string) string {
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimPrefix(name, "BENCH_")
	name = strings.TrimSuffix(name, ".json")
	if len(name) > 14 {
		name = name[len(name)-14:]
	}
	return name
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsnap: ")
	compareWith := flag.String("compare", "", "baseline snapshot to diff against instead of emitting JSON")
	thresholdPct := flag.Float64("threshold", 20, "allowed regression percent in -compare mode")
	trend := flag.Bool("trend", false, "render the history across the snapshot files given as arguments")
	flag.Parse()
	if *trend {
		if err := runTrend(os.Stdout, flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}
	results, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin (did the bench run fail?)")
	}
	if *compareWith != "" {
		regressions, err := runCompare(os.Stdout, *compareWith, results, *thresholdPct)
		if err != nil {
			log.Fatal(err)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	doc := snapshot{
		Schema:     schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
