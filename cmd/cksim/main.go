// Command cksim simulates an execution under a multilevel checkpoint plan
// and prints the wall-clock breakdown.
//
// Usage:
//
//	cksim -paper -te 3e6 -rates 16-12-8-4 [-policy ml-opt-scale] [-runs 100] [-json]
//	cksim -spec problem.json [-policy ...] [-runs N] [-json]
//	cksim -paper -plan plan.json        # replay a plan saved by ckptopt -json
//
// The plan is computed with the selected policy, then played through the
// stochastic simulator.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"mlckpt"
	"mlckpt/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cksim: ")
	var (
		specPath = flag.String("spec", "", "path to a JSON Spec")
		policy   = flag.String("policy", string(mlckpt.MLOptScale), "optimization policy")
		paper    = flag.Bool("paper", false, "use the paper's Section IV problem")
		te       = flag.Float64("te", 3e6, "workload in core-days (with -paper)")
		rates    = flag.String("rates", "16-12-8-4", "failure case (with -paper)")
		runs     = flag.Int("runs", 100, "simulation repetitions")
		seed     = flag.Uint64("seed", 1, "random seed")
		jitter   = flag.Float64("jitter", 0.3, "overhead jitter ratio")
		planPath = flag.String("plan", "", "simulate a saved plan JSON (from ckptopt -json) instead of re-optimizing")
		asJSON   = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	spec, err := cli.ResolveSpec(*paper, *specPath, *te, *rates)
	if err != nil {
		flag.Usage()
		log.Fatal(err)
	}

	var plan mlckpt.Plan
	if *planPath != "" {
		blob, err := os.ReadFile(*planPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(blob, &plan); err != nil {
			log.Fatalf("parsing %s: %v", *planPath, err)
		}
	} else {
		plan, err = mlckpt.Optimize(spec, mlckpt.Policy(*policy))
		if err != nil {
			log.Fatal(err)
		}
	}
	rep, err := mlckpt.Simulate(spec, plan, mlckpt.SimOptions{
		Runs: *runs, Seed: *seed, Jitter: *jitter,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Plan   mlckpt.Plan   `json:"plan"`
			Report mlckpt.Report `json:"report"`
		}{plan, rep}); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("plan: %s at %d cores, intervals %v (model estimate %.2f days)\n",
		plan.Policy, plan.Scale, plan.Intervals, plan.ExpectedWallClockDays)
	fmt.Printf("simulated over %d runs:\n", rep.Runs)
	fmt.Printf("  wall clock:  %.2f ± %.2f days\n", rep.MeanWallClockDays, rep.CI95Days)
	fmt.Printf("  productive:  %.2f days\n", rep.ProductiveDays)
	fmt.Printf("  checkpoint:  %.2f days\n", rep.CheckpointDays)
	fmt.Printf("  restart:     %.2f days\n", rep.RestartDays)
	fmt.Printf("  rollback:    %.2f days\n", rep.RollbackDays)
	fmt.Printf("  failures:    %.0f per run (mean)\n", rep.MeanFailures)
	fmt.Printf("  efficiency:  %.3f\n", rep.Efficiency)
	if rep.TruncatedRuns > 0 {
		fmt.Printf("  WARNING: %d runs hit the truncation horizon\n", rep.TruncatedRuns)
	}
}
