// Command mlckptlint runs mlckpt's project-specific determinism and
// concurrency analyzers (internal/lint) over the module and reports
// findings with file:line positions. It is part of the tier-1 gate:
// `make test` runs it alongside go vet, and any finding fails the build.
//
// Usage:
//
//	mlckptlint [-json] [-checks a,b] [patterns ...]
//
// Patterns are package directories relative to the module root; "./..."
// (the default) walks the whole module. Exit status: 0 clean, 1 findings
// reported, 2 usage or load error.
//
// Findings are suppressed case by case with a justified comment on the
// offending line or the line directly above it:
//
//	//lint:allow <check> <reason>
//
// See docs/LINT.md for what each check catches and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mlckpt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlckptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		selected, err := selectAnalyzers(analyzers, *checks)
		if err != nil {
			fmt.Fprintln(stderr, "mlckptlint:", err)
			return 2
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mlckptlint:", err)
		return 2
	}
	mod, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "mlckptlint:", err)
		return 2
	}
	units, err := mod.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "mlckptlint:", err)
		return 2
	}

	findings := lint.Run(units, analyzers)
	if *jsonOut {
		type jsonFinding struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Message string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Check:   f.Check,
				File:    relativize(cwd, f.Pos.Filename),
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mlckptlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relativize(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mlckptlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func selectAnalyzers(all []*lint.Analyzer, csv string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(lint.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks selected nothing")
	}
	return out, nil
}

func relativize(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
