package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the process into dir for one test (the driver resolves the
// module from the working directory, like go vet does).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// defectiveModule writes a module with one nondeterminism defect and one
// clean package.
func defectiveModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/drv\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() int64 { return time.Now().Unix() }
`,
		"internal/model/ok.go": `package model

func Twice(x float64) float64 { return 2 * x }
`,
	}
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestDriverReportsFindingsWithPositions(t *testing.T) {
	chdir(t, defectiveModule(t))
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, filepath.FromSlash("internal/sim/clock.go")+":5:") ||
		!strings.Contains(out, "nondeterminism") {
		t.Fatalf("missing file:line diagnostic in output:\n%s", out)
	}
}

func TestDriverExitsZeroOnCleanPackage(t *testing.T) {
	chdir(t, defectiveModule(t))
	var stdout, stderr strings.Builder
	if code := run([]string{"internal/model"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0; output: %s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run should print nothing, got:\n%s", stdout.String())
	}
}

func TestDriverJSONOutput(t *testing.T) {
	chdir(t, defectiveModule(t))
	var stdout, stderr strings.Builder
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Check != "nondeterminism" || findings[0].Line != 5 {
		t.Fatalf("unexpected JSON findings: %+v", findings)
	}
}

func TestDriverChecksSelection(t *testing.T) {
	chdir(t, defectiveModule(t))
	var stdout, stderr strings.Builder
	// Only floateq selected: the time.Now defect is out of scope.
	if code := run([]string{"-checks", "floateq", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0; output: %s%s", code, stdout.String(), stderr.String())
	}
	if code := run([]string{"-checks", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check: exit code %d, want 2", code)
	}
}

func TestDriverList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, name := range []string{"nondeterminism", "maporder", "floateq", "goroutine-capture"} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
