package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDiag(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		want diag
	}{
		{
			line: "internal/mpisim/event.go:326:8: &mailbox{} escapes to heap",
			ok:   true,
			want: diag{file: "internal/mpisim/event.go", line: 326, col: 8, msg: "&mailbox{} escapes to heap"},
		},
		{
			line: "internal/sim/sim.go:614:13: moved to heap: leak",
			ok:   true,
			want: diag{file: "internal/sim/sim.go", line: 614, col: 13, msg: "moved to heap: leak"},
		},
		// The -m -m verbose header (trailing colon) and flow lines must
		// be dropped, or every escape would double-count.
		{line: "internal/mpisim/event.go:326:8: &mailbox{} escapes to heap:", ok: false},
		{line: "internal/mpisim/event.go:326:8:   flow: {heap} = &{storage}:", ok: false},
		// Inlining chatter and package headers are not verdicts.
		{line: "internal/eventq/eventq.go:81:13: inlining call to (*Queue).less", ok: false},
		{line: "# mlckpt/internal/eventq", ok: false},
		{line: "internal/eventq/eventq.go:32:7: q does not escape", ok: false},
		{line: "", ok: false},
	}
	for _, tc := range cases {
		got, ok := parseDiag(tc.line)
		if ok != tc.ok {
			t.Errorf("parseDiag(%q) ok=%v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("parseDiag(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "allocgate.baseline")
	current := map[string]int{
		baselineKey("a/b.go", "(*T).M", "x escapes to heap"):    2,
		baselineKey("a/b.go", "F", "moved to heap: y"):          1,
		baselineKey("c/d.go", "(*U).N", "&u{} escapes to heap"): 1,
	}
	if err := writeBaseline(path, current); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(current) {
		t.Fatalf("round trip: got %v, want %v", got, current)
	}
	for k, n := range current {
		if got[k] != n {
			t.Fatalf("round trip key %q: got %d, want %d", k, got[k], n)
		}
	}
}

func TestReadBaselineRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.baseline")
	if err := os.WriteFile(path, []byte("not a record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

func TestDiffBaseline(t *testing.T) {
	base := map[string]int{"a": 1, "b": 2, "c": 1}
	current := map[string]int{"a": 2, "b": 1, "c": 1, "d": 1}
	gains, losses := diffBaseline(base, current)
	if len(gains) != 2 || gains[0] != "a" || gains[1] != "d" {
		t.Fatalf("gains = %v, want [a d]", gains)
	}
	if len(losses) != 1 || losses[0] != "b" {
		t.Fatalf("losses = %v, want [b]", losses)
	}
}

func TestScanHotFuncs(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/gate\n\ngo 1.22\n")
	write("internal/k/k.go", `package k

// Hot is annotated.
//
//mlckpt:hotpath
func Hot() {}

//mlckpt:hotpath
func (q *Queue) Push() {}

//mlckpt:hotpath
func (q Queue) Peek() {}

type Queue struct{}

// Cold has no marker.
func Cold() {}
`)
	// Test files and testdata are out of scope.
	write("internal/k/k_test.go", "package k\n\n//mlckpt:hotpath\nfunc hotInTest() {}\n")
	write("testdata/x.go", "package x\n\n//mlckpt:hotpath\nfunc ignored() {}\n")

	hot, err := scanHotFuncs(dir)
	if err != nil {
		t.Fatal(err)
	}
	fns := hot["internal/k/k.go"]
	if len(fns) != 3 {
		t.Fatalf("got %d hot funcs, want 3: %+v", len(fns), hot)
	}
	wantNames := map[string]bool{"Hot": true, "(*Queue).Push": true, "(Queue).Peek": true}
	for _, fn := range fns {
		if !wantNames[fn.name] {
			t.Errorf("unexpected hot func name %q", fn.name)
		}
		if fn.start <= 0 || fn.end < fn.start {
			t.Errorf("%s has bad span %d-%d", fn.name, fn.start, fn.end)
		}
	}
	if len(hot) != 1 {
		t.Fatalf("hot funcs outside internal/k/k.go: %+v", hot)
	}
}

// TestGateEndToEnd drives the real tool — go build -gcflags='-m -m'
// included — against a synthetic module: first -update writes a baseline,
// a clean re-check passes, then an injected escape fails with the
// file:line diagnostic.
func TestGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go compiler; skipped in -short")
	}
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/gate\n\ngo 1.22\n")
	const clean = `package k

var sink *int

//mlckpt:hotpath
func Hot(x int) int {
	return x * 2
}
`
	const leaky = `package k

var sink *int

//mlckpt:hotpath
func Hot(x int) int {
	p := new(int)
	*p = x
	sink = p
	return x * 2
}
`
	write("internal/k/k.go", clean)
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-update"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update exited %d: %s%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("clean check exited %d: %s%s", code, stdout.String(), stderr.String())
	}

	write("internal/k/k.go", leaky)
	stdout.Reset()
	stderr.Reset()
	if code := run(nil, &stdout, &stderr); code != 1 {
		t.Fatalf("leaky check exited %d, want 1: %s%s", code, stdout.String(), stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "internal/k/k.go:7:") || !strings.Contains(out, "Hot") {
		t.Fatalf("failure diagnostic lacks file:line and function: %s", out)
	}
}
