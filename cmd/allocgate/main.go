// Command allocgate is the compiler-verified half of the //mlckpt:hotpath
// contract (the AST half lives in internal/lint's hotpath analyzer; see
// docs/LINT.md). It compiles the module with `go build -gcflags='-m -m'`,
// collects the escape-analysis verdicts the compiler emits, and keeps the
// ones that land inside functions annotated //mlckpt:hotpath. The result
// is compared against the checked-in allocgate.baseline:
//
//   - a hot function GAINING a heap escape fails the gate (exit 1) with
//     the live file:line:col diagnostics, so a regression points at the
//     exact expression that started allocating;
//   - a hot function LOSING an escape only warns — the improvement is
//     real, but the baseline should be refreshed (`make allocgate-baseline`)
//     so the next regression is caught at the new, lower, waterline.
//
// The baseline is keyed by (file, function, compiler message) with a
// count, not by line number: moving code around inside a function must
// not invalidate it, while a second instance of the same allocation must.
//
// Exit codes follow mlckptlint: 0 clean, 1 gate failed, 2 operational
// error (no baseline, build failure, unreadable tree).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

const marker = "mlckpt:hotpath"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("allocgate", flag.ContinueOnError)
	flags.SetOutput(stderr)
	baselinePath := flags.String("baseline", "allocgate.baseline", "baseline file, relative to the module root")
	update := flags.Bool("update", false, "rewrite the baseline from the current build instead of checking against it")
	verbose := flags.Bool("v", false, "print every escape attributed to a hot function")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: allocgate [-baseline file] [-update] [-v]\n\n")
		fmt.Fprintf(stderr, "Gates //mlckpt:hotpath functions on the compiler's escape analysis.\n\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "allocgate: %v\n", err)
		return 2
	}
	hot, err := scanHotFuncs(root)
	if err != nil {
		fmt.Fprintf(stderr, "allocgate: %v\n", err)
		return 2
	}
	if len(hot) == 0 {
		fmt.Fprintf(stderr, "allocgate: no //mlckpt:hotpath functions found under %s\n", root)
		return 2
	}
	diags, err := escapeDiagnostics(root, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "allocgate: %v\n", err)
		return 2
	}

	current := map[string]int{}      // baseline key -> count
	witness := map[string][]string{} // baseline key -> live file:line:col diagnostics
	funcs := map[string]bool{}       // gated functions that compiled (for the summary)
	for file, fns := range hot {
		for _, fn := range fns {
			funcs[file+":"+fn.name] = false
		}
	}
	for _, d := range diags {
		fn, ok := containing(hot, d.file, d.line)
		if !ok {
			continue
		}
		funcs[d.file+":"+fn] = true
		key := baselineKey(d.file, fn, d.msg)
		current[key]++
		witness[key] = append(witness[key], fmt.Sprintf("%s:%d:%d: %s", d.file, d.line, d.col, d.msg))
		if *verbose {
			fmt.Fprintf(stdout, "escape: %s:%d:%d: [%s] %s\n", d.file, d.line, d.col, fn, d.msg)
		}
	}

	abs := filepath.Join(root, *baselinePath)
	if *update {
		if err := writeBaseline(abs, current); err != nil {
			fmt.Fprintf(stderr, "allocgate: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "allocgate: baseline updated: %d gated function(s), %d distinct escape(s)\n",
			countHot(hot), len(current))
		return 0
	}

	base, err := readBaseline(abs)
	if err != nil {
		fmt.Fprintf(stderr, "allocgate: %v\n(run `make allocgate-baseline` to create it)\n", err)
		return 2
	}
	gains, losses := diffBaseline(base, current)
	for _, key := range losses {
		fmt.Fprintf(stdout, "allocgate: improved: %s (now %d, baseline %d) — refresh with `make allocgate-baseline`\n",
			keyString(key), current[key], base[key])
	}
	if len(gains) == 0 {
		fmt.Fprintf(stdout, "allocgate: ok: %d gated function(s), %d baseline escape(s), no gains\n",
			countHot(hot), len(base))
		return 0
	}
	for _, key := range gains {
		fmt.Fprintf(stderr, "allocgate: FAIL: %s gained a heap escape (now %d, baseline %d):\n",
			keyString(key), current[key], base[key])
		for _, w := range witness[key] {
			fmt.Fprintf(stderr, "  %s\n", w)
		}
	}
	fmt.Fprintf(stderr, "allocgate: %d regression(s); fix the allocation or, if intentional, run `make allocgate-baseline` and justify the diff in review\n", len(gains))
	return 1
}

// hotFunc is one annotated function's span within its file.
type hotFunc struct {
	name       string
	start, end int // line range, inclusive (doc comment excluded)
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod, so the tool runs from any subdirectory like `go test` does.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// scanHotFuncs parses every non-test .go file under root (skipping
// testdata, vendor and hidden directories) and records the line span of
// each function whose doc comment carries //mlckpt:hotpath. Parsing only —
// no type checking — so the scan is cheap and tolerant of a tree that the
// full linter would reject.
func scanHotFuncs(root string) (map[string][]hotFunc, error) {
	out := map[string][]hotFunc{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %v", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasMarker(fd.Doc) {
				continue
			}
			out[rel] = append(out[rel], hotFunc{
				name:  funcName(fd),
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// funcName renders the compiler's notation for a declaration: Name for
// functions, (T).Name / (*T).Name for methods.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := false
	if s, ok := t.(*ast.StarExpr); ok {
		star = true
		t = s.X
	}
	// Strip type parameters if present (Foo[T]).
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if ix, ok := t.(*ast.IndexListExpr); ok {
		t = ix.X
	}
	base := "?"
	if id, ok := t.(*ast.Ident); ok {
		base = id.Name
	}
	if star {
		return "(*" + base + ")." + fd.Name.Name
	}
	return "(" + base + ")." + fd.Name.Name
}

// diag is one escape-analysis verdict at a source position.
type diag struct {
	file      string // slash-separated, relative to the module root
	line, col int
	msg       string
}

// escapeDiagnostics builds the whole module with -m -m and keeps the
// verdict lines: "<expr> escapes to heap" and "moved to heap: <var>".
// With -m -m each verdict appears twice — once suffixed ':' introducing
// the flow explanation, once bare — so only the bare form is kept; flow
// and inlining chatter is dropped.
func escapeDiagnostics(root string, stderr io.Writer) ([]diag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		// A build failure is an operational error: show the compiler's
		// words, not a parse of them.
		fmt.Fprintf(stderr, "%s", out)
		return nil, fmt.Errorf("go build -gcflags='-m -m' failed: %v", err)
	}
	var diags []diag
	for _, line := range strings.Split(string(out), "\n") {
		d, ok := parseDiag(line)
		if ok {
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// parseDiag extracts one verdict line of the form
// "path/file.go:LINE:COL: message".
func parseDiag(line string) (diag, bool) {
	rest := line
	i := strings.Index(rest, ".go:")
	if i < 0 {
		return diag{}, false
	}
	file := rest[:i+len(".go")]
	rest = rest[i+len(".go:"):]
	var ln, col int
	var msg string
	j := strings.Index(rest, ": ")
	if j < 0 {
		return diag{}, false
	}
	if _, err := fmt.Sscanf(rest[:j], "%d:%d", &ln, &col); err != nil {
		return diag{}, false
	}
	msg = rest[j+2:]
	if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap: ") {
		return diag{}, false
	}
	return diag{file: filepath.ToSlash(file), line: ln, col: col, msg: msg}, true
}

// containing resolves a diagnostic position to the annotated function
// whose span covers it, if any.
func containing(hot map[string][]hotFunc, file string, line int) (string, bool) {
	for _, fn := range hot[file] {
		if line >= fn.start && line <= fn.end {
			return fn.name, true
		}
	}
	return "", false
}

// Baseline file format: one record per line,
//
//	<count>\t<file>\t<function>\t<message>
//
// sorted, with '#' comments. Counts make the key a multiset: a second
// instance of an already-baselined allocation is still a gain.

func baselineKey(file, fn, msg string) string {
	return file + "\t" + fn + "\t" + msg
}

func keyString(key string) string {
	parts := strings.SplitN(key, "\t", 3)
	if len(parts) != 3 {
		return key
	}
	return fmt.Sprintf("%s in %s (%s)", parts[2], parts[1], parts[0])
}

func readBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("%s:%d: malformed baseline record (want count<TAB>file<TAB>func<TAB>message)", path, i+1)
		}
		var n int
		if _, err := fmt.Sscanf(parts[0], "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, i+1, parts[0])
		}
		out[baselineKey(parts[1], parts[2], parts[3])] = n
	}
	return out, nil
}

func writeBaseline(path string, current map[string]int) error {
	keys := make([]string, 0, len(current))
	for k := range current {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# allocgate baseline: heap escapes the compiler reports inside //mlckpt:hotpath functions.\n")
	b.WriteString("# Format: count<TAB>file<TAB>function<TAB>compiler message. Regenerate with `make allocgate-baseline`;\n")
	b.WriteString("# any diff is an intentional allocation-profile change and belongs in review.\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%d\t%s\n", current[k], k)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// diffBaseline returns the keys that gained occurrences (fail) and the
// keys that lost them (warn), both sorted for deterministic output.
func diffBaseline(base, current map[string]int) (gains, losses []string) {
	for k, n := range current {
		if n > base[k] {
			gains = append(gains, k)
		}
	}
	for k, n := range base {
		if current[k] < n {
			losses = append(losses, k)
		}
	}
	sort.Strings(gains)
	sort.Strings(losses)
	return gains, losses
}

func countHot(hot map[string][]hotFunc) int {
	n := 0
	for _, fns := range hot {
		n += len(fns)
	}
	return n
}
