// Command obscheck validates observability artifacts produced by the
// -metrics-out and -trace-out flags of cmd/experiments and cmd/ckptopt.
//
// Deprecated: obscheck is now a shim over `obstool validate`, kept so
// existing scripts and CI invocations keep working. New callers should use
// cmd/obstool, which adds diff, summarize, and attrib modes. Behavior and
// flags are unchanged; the only difference is a deprecation note on
// stderr.
//
// Usage:
//
//	obscheck [-metrics FILE] [-trace FILE]
//
// At least one flag is required. Exit status 0 means every given file
// parsed and passed validation; 1 reports the first violation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mlckpt/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obscheck: ")
	var (
		metricsPath = flag.String("metrics", "", "metrics snapshot JSON to validate")
		tracePath   = flag.String("trace", "", "Chrome trace-event JSON to validate")
	)
	flag.Parse()
	if *metricsPath == "" && *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "obscheck: deprecated; use `obstool validate` (same flags, plus diff/summarize/attrib modes)")
	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		snap, err := obs.ValidateMetricsJSON(data)
		if err != nil {
			log.Fatalf("%s: %v", *metricsPath, err)
		}
		fmt.Printf("%s: ok (%d metrics, %d volatile)\n", *metricsPath, len(snap.Metrics), len(snap.Volatile))
	}
	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		n, err := obs.ValidateTraceJSON(data)
		if err != nil {
			log.Fatalf("%s: %v", *tracePath, err)
		}
		fmt.Printf("%s: ok (%d trace events)\n", *tracePath, n)
	}
}
