package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlckpt/internal/cli"
	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/obs"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
	"mlckpt/internal/stats"
)

// tracedRun records one complete simulated run on an "attrib/" track plus
// a synthetic mpisim rank timeline, and returns the collector.
func tracedRun(t *testing.T) *obs.Collector {
	t.Helper()
	col := obs.NewCollector()
	cfg := sim.Config{
		Params: &model.Params{
			Te:      100 * failure.SecondsPerDay,
			Speedup: speedup.Quadratic{Kappa: 0.5, NStar: 1e4},
			Levels: overhead.SymmetricLevels([]overhead.Cost{
				overhead.Constant(1), overhead.Constant(3),
				overhead.Constant(5), overhead.Constant(20),
			}, 0.5),
			Alloc: 10,
			Rates: failure.MustParseRates("40-20-10-5", 1e4),
		},
		N:            5000,
		X:            []float64{40, 20, 10, 5},
		Obs:          col,
		ObsTrack:     "attrib/test-run",
		ObsMaxEvents: -1,
	}
	if _, err := sim.Run(cfg, stats.NewRNG(7)); err != nil {
		t.Fatal(err)
	}
	// A hand-laid mpisim-style rank timeline for summarize's comm split:
	// 10 s of wall, 3 s inside collectives.
	col.Span("mpisim/w0", "run", 0, 10, map[string]float64{"ranks": 2})
	col.Span("mpisim/w0", "barrier", 1, 2, map[string]float64{"seq": 0})
	col.Span("mpisim/w0", "allreduce", 5, 1, map[string]float64{"seq": 1})
	col.Count("sim.runs", 1)
	return col
}

// writeArtifacts persists the collector's metrics and trace to dir.
func writeArtifacts(t *testing.T, col *obs.Collector, dir string) (metrics, trace string) {
	t.Helper()
	metrics, trace = filepath.Join(dir, "m.json"), filepath.Join(dir, "t.json")
	if err := cli.WriteMetrics(col.Registry, metrics); err != nil {
		t.Fatal(err)
	}
	if err := cli.WriteTrace(col.Trace, trace); err != nil {
		t.Fatal(err)
	}
	return metrics, trace
}

func runTool(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestValidateAcceptsArtifacts(t *testing.T) {
	m, tr := writeArtifacts(t, tracedRun(t), t.TempDir())
	code, out, errs := runTool("validate", "-metrics", m, "-trace", tr)
	if code != 0 {
		t.Fatalf("validate = %d\n%s", code, errs)
	}
	if !strings.Contains(out, "ok (") {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runTool("validate", "-metrics", bad); code != 1 {
		t.Errorf("validate on garbage = %d, want 1", code)
	}
}

func TestDiffExactAndThreshold(t *testing.T) {
	dir := t.TempDir()
	a := obs.NewCollector()
	a.Count("sim.runs", 100)
	b := obs.NewCollector()
	b.Count("sim.runs", 101)
	b.CountVolatile("noise", 5) // volatile-only differences never count
	aPath, _ := writeArtifacts(t, a, dir)
	bPath, _ := writeArtifacts(t, b, t.TempDir())

	if code, _, _ := runTool("diff", "-a", aPath, "-b", aPath); code != 0 {
		t.Errorf("self-diff = %d, want 0", code)
	}
	code, out, _ := runTool("diff", "-a", aPath, "-b", bPath)
	if code != 1 || !strings.Contains(out, "sim.runs") {
		t.Errorf("drift diff = %d, out:\n%s", code, out)
	}
	// 1% drift within a 5% threshold passes.
	if code, _, _ := runTool("diff", "-a", aPath, "-b", bPath, "-threshold", "5"); code != 0 {
		t.Errorf("thresholded diff = %d, want 0", code)
	}
}

func TestSummarizeSplitsCommCompute(t *testing.T) {
	_, tr := writeArtifacts(t, tracedRun(t), t.TempDir())
	code, out, errs := runTool("summarize", "-trace", tr)
	if code != 0 {
		t.Fatalf("summarize = %d\n%s", code, errs)
	}
	if !strings.Contains(out, "mpisim/w0") || !strings.Contains(out, "30.00% communication") {
		t.Errorf("missing comm split:\n%s", out)
	}
	if !strings.Contains(out, "attrib/test-run") {
		t.Errorf("missing run track:\n%s", out)
	}
}

func TestAttribReportsExactDecomposition(t *testing.T) {
	_, tr := writeArtifacts(t, tracedRun(t), t.TempDir())
	code, out, errs := runTool("attrib", "-trace", tr)
	if code != 0 {
		t.Fatalf("attrib = %d\n%s", code, errs)
	}
	if !strings.Contains(out, "track attrib/test-run") || !strings.Contains(out, "identity exact") {
		t.Errorf("missing exact report:\n%s", out)
	}
	if !strings.Contains(out, "1 of 1 tracks attributed exactly") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestAttribFailsOnMissingPrefix(t *testing.T) {
	_, tr := writeArtifacts(t, tracedRun(t), t.TempDir())
	if code, _, _ := runTool("attrib", "-trace", tr, "-track", "absent/"); code != 1 {
		t.Errorf("attrib on absent prefix = %d, want 1", code)
	}
}

func TestAttribRefusesTruncatedTrack(t *testing.T) {
	col := obs.NewCollector()
	col.Span("attrib/cut", "checkpoint", 0, 1, map[string]float64{"level": 1, "progress": 0})
	col.Instant("attrib/cut", "trace-truncated", 1, nil)
	data, err := json.Marshal(col.Trace)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errs := runTool("attrib", "-trace", path)
	if code != 1 || !strings.Contains(errs, "truncated") {
		t.Errorf("truncated attrib = %d, stderr:\n%s", code, errs)
	}
}
