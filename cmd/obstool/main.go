// Command obstool inspects the observability artifacts written by the
// -metrics-out and -trace-out flags of cmd/experiments and cmd/ckptopt.
// It subsumes the old cmd/obscheck validator (which remains as a
// deprecated shim) and adds comparison and analysis modes:
//
//	obstool validate [-metrics FILE] [-trace FILE]
//	    Validate artifacts against the exporter schemas (internal/obs).
//
//	obstool diff -a BASE.json -b CURRENT.json [-threshold PCT]
//	    Compare the deterministic sections of two metrics snapshots
//	    (volatile sections and capture stamps are stripped first). Exit 1
//	    when any shared metric drifts by more than -threshold percent
//	    (default 0: the sections must be identical — the determinism
//	    contract across worker counts and engines). Added or removed
//	    metrics are reported but only fail at -threshold 0.
//
//	obstool summarize -trace FILE
//	    Per-track span totals, plus a communication/computation split for
//	    mpisim rank timelines (collective spans are totally ordered, so
//	    comm = Σ collective durations and compute = run wall − comm).
//
//	obstool attrib -trace FILE [-track PREFIX]
//	    Waste-attribute every run track matching PREFIX (default
//	    "attrib/"; sim and fault-injected real-run tracks work too when
//	    recorded without an event budget). Prints each track's exact
//	    wall-clock decomposition; exit 1 if any selected track fails or
//	    none matches.
//
// All modes exit 0 on success, 1 on a validation/diff/attribution
// failure, and 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"mlckpt/internal/obs"
	"mlckpt/internal/obs/attrib"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: obstool <validate|diff|summarize|attrib> [flags]")
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	cmd, rest := args[0], args[1:]
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "obstool %s: "+format+"\n", append([]any{cmd}, a...)...)
		return 1
	}
	fs := flag.NewFlagSet("obstool "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	switch cmd {
	case "validate":
		metricsPath := fs.String("metrics", "", "metrics snapshot JSON to validate")
		tracePath := fs.String("trace", "", "Chrome trace-event JSON to validate")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if *metricsPath == "" && *tracePath == "" {
			fs.Usage()
			return 2
		}
		if *metricsPath != "" {
			data, err := os.ReadFile(*metricsPath)
			if err != nil {
				return fail("%v", err)
			}
			snap, err := obs.ValidateMetricsJSON(data)
			if err != nil {
				return fail("%s: %v", *metricsPath, err)
			}
			fmt.Fprintf(stdout, "%s: ok (%d metrics, %d volatile)\n", *metricsPath, len(snap.Metrics), len(snap.Volatile))
		}
		if *tracePath != "" {
			data, err := os.ReadFile(*tracePath)
			if err != nil {
				return fail("%v", err)
			}
			n, err := obs.ValidateTraceJSON(data)
			if err != nil {
				return fail("%s: %v", *tracePath, err)
			}
			fmt.Fprintf(stdout, "%s: ok (%d trace events)\n", *tracePath, n)
		}
		return 0

	case "diff":
		aPath := fs.String("a", "", "baseline metrics snapshot")
		bPath := fs.String("b", "", "current metrics snapshot")
		threshold := fs.Float64("threshold", 0, "allowed drift percent per metric (0 = byte-exact determinism)")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if *aPath == "" || *bPath == "" {
			fs.Usage()
			return 2
		}
		drifts, err := diffMetrics(stdout, *aPath, *bPath, *threshold)
		if err != nil {
			return fail("%v", err)
		}
		if drifts > 0 {
			return fail("%d metrics beyond %.3g%% drift", drifts, *threshold)
		}
		return 0

	case "summarize":
		tracePath := fs.String("trace", "", "Chrome trace-event JSON to summarize")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if *tracePath == "" {
			fs.Usage()
			return 2
		}
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			return fail("%v", err)
		}
		tr, err := obs.DecodeTraceJSON(data)
		if err != nil {
			return fail("%s: %v", *tracePath, err)
		}
		summarize(stdout, tr)
		return 0

	case "attrib":
		tracePath := fs.String("trace", "", "Chrome trace-event JSON holding run tracks")
		trackPrefix := fs.String("track", "attrib/", "attribute tracks with this prefix")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if *tracePath == "" {
			fs.Usage()
			return 2
		}
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			return fail("%v", err)
		}
		tr, err := obs.DecodeTraceJSON(data)
		if err != nil {
			return fail("%s: %v", *tracePath, err)
		}
		var tracks []string
		for _, track := range tr.Tracks() {
			if strings.HasPrefix(track, *trackPrefix) {
				tracks = append(tracks, track)
			}
		}
		sort.Strings(tracks)
		if len(tracks) == 0 {
			return fail("%s: no tracks with prefix %q (have %v)", *tracePath, *trackPrefix, tr.Tracks())
		}
		bad := 0
		for _, track := range tracks {
			rep, err := attrib.FromTrace(tr, track)
			if err != nil {
				bad++
				fmt.Fprintf(stderr, "obstool attrib: %s: %v\n", track, err)
				continue
			}
			fmt.Fprint(stdout, rep.Render())
		}
		fmt.Fprintf(stdout, "%d of %d tracks attributed exactly\n", len(tracks)-bad, len(tracks))
		if bad > 0 {
			return 1
		}
		return 0
	}
	return usage(stderr)
}

// diffMetrics compares the deterministic sections of two snapshots and
// returns the number of metrics drifting beyond thresholdPct.
func diffMetrics(w io.Writer, aPath, bPath string, thresholdPct float64) (int, error) {
	load := func(path string) (map[string]obs.Metric, []string, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		snap, err := obs.ValidateMetricsJSON(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		snap.StripVolatile()
		m := make(map[string]obs.Metric, len(snap.Metrics))
		names := make([]string, 0, len(snap.Metrics))
		for _, metric := range snap.Metrics {
			m[metric.Name] = metric
			names = append(names, metric.Name)
		}
		return m, names, nil
	}
	a, aNames, err := load(aPath)
	if err != nil {
		return 0, err
	}
	b, bNames, err := load(bPath)
	if err != nil {
		return 0, err
	}

	// A metric's scalar view: counter value, gauge, or histogram sum.
	scalar := func(m obs.Metric) float64 {
		switch m.Type {
		case "counter":
			return float64(m.Value)
		case "gauge":
			return m.Gauge
		default:
			return m.Sum()
		}
	}
	drifts := 0
	for _, name := range aNames {
		bm, ok := b[name]
		if !ok {
			fmt.Fprintf(w, "- %-40s only in %s\n", name, aPath)
			if thresholdPct == 0 {
				drifts++
			}
			continue
		}
		am := a[name]
		av, bv := scalar(am), scalar(bm)
		//lint:allow floateq the diff's default contract IS byte-exact determinism; any nonzero drift must be reported, however small
		if av == bv && am.Count == bm.Count {
			continue
		}
		pct := math.Inf(1)
		if av != 0 {
			pct = 100 * math.Abs(bv-av) / math.Abs(av)
		}
		mark := "  "
		if pct > thresholdPct {
			mark = "!!"
			drifts++
		}
		fmt.Fprintf(w, "%s %-40s %14.6g -> %14.6g  (%+.3g%%)\n", mark, name, av, bv, pct)
	}
	for _, name := range bNames {
		if _, ok := a[name]; !ok {
			fmt.Fprintf(w, "+ %-40s only in %s\n", name, bPath)
			if thresholdPct == 0 {
				drifts++
			}
		}
	}
	fmt.Fprintf(w, "%d + %d metrics compared, %d beyond threshold\n", len(aNames), len(bNames), drifts)
	return drifts, nil
}

// summarize prints per-track span statistics. Tracks carrying an mpisim
// "run" span additionally get a comm/compute split: collectives on a rank
// timeline never overlap (they are globally ordered), so their total
// duration is the track's communication share of the run's wall clock.
func summarize(w io.Writer, tr *obs.Trace) {
	collective := map[string]bool{
		"barrier": true, "bcast": true, "allreduce": true,
		"gather": true, "reduce": true, "scatter": true,
	}
	for _, track := range tr.Tracks() {
		evs := tr.Events(track)
		type agg struct {
			count int
			dur   float64
		}
		byName := map[string]*agg{}
		var names []string
		spans, instants := 0, 0
		wall, comm := 0.0, 0.0
		hasRun := false
		for _, ev := range evs {
			if !ev.Span() {
				instants++
				continue
			}
			spans++
			a, ok := byName[ev.Name]
			if !ok {
				a = &agg{}
				byName[ev.Name] = a
				names = append(names, ev.Name)
			}
			a.count++
			a.dur += ev.Dur
			if ev.Name == "run" {
				hasRun = true
				wall = ev.Dur
			}
			if collective[ev.Name] {
				comm += ev.Dur
			}
		}
		fmt.Fprintf(w, "%s: %d spans, %d instants\n", track, spans, instants)
		sort.Strings(names)
		for _, name := range names {
			a := byName[name]
			fmt.Fprintf(w, "  %-22s %6d x  %14.6f s\n", name, a.count, a.dur)
		}
		if hasRun && wall > 0 {
			fmt.Fprintf(w, "  comm/compute: %.6f s / %.6f s (%.2f%% communication)\n",
				comm, wall-comm, 100*comm/wall)
		}
	}
}
