// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-runs N] [-quick] <id>...
//	experiments all
//
// IDs: fig1 fig2 fig3 fig4 tab2 fig5 tab3 fig6 fig7 tab4 conv ablate sens.
// -quick shrinks run counts and scales for a fast smoke pass; the default
// settings reproduce the paper's configuration (100-run means).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mlckpt/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		runs  = flag.Int("runs", 0, "override simulation repetitions (0 = paper default)")
		quick = flag.Bool("quick", false, "fast smoke settings")
	)
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "ids: fig1 fig2 fig3 fig4 tab2 fig5 tab3 fig6 fig7 tab4 conv ablate sens all")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"fig1", "fig2", "fig3", "fig4", "tab2", "fig5", "tab3", "fig6", "fig7", "tab4", "conv", "ablate", "sens"}
	}
	simRuns := *runs
	if *quick && simRuns == 0 {
		simRuns = 10
	}

	// Figures 5-7 and Table III share the two Eval sweeps; compute lazily.
	var eval3, eval10 *experiments.EvalResult
	getEval := func(te float64) (*experiments.EvalResult, error) {
		cache := &eval3
		if te == 10e6 {
			cache = &eval10
		}
		if *cache == nil {
			r, err := experiments.Eval(te, simRuns, nil)
			if err != nil {
				return nil, err
			}
			*cache = &r
		}
		return *cache, nil
	}

	for _, id := range ids {
		var out string
		var err error
		switch id {
		case "fig1":
			out = experiments.Fig1(50).Render()
		case "fig2":
			maxScale := 1024
			if *quick {
				maxScale = 64
			}
			var r experiments.Fig2Result
			r, err = experiments.Fig2(maxScale)
			if err == nil {
				out = r.Render()
			}
		case "fig3":
			var r experiments.Fig3Result
			r, err = experiments.Fig3(9)
			if err == nil {
				out = r.Render()
			}
		case "fig4":
			ranks, real, sims := 32, 10, 400
			if *quick {
				ranks, real, sims = 16, 3, 100
			}
			var r experiments.Fig4Result
			r, err = experiments.Fig4(ranks, real, sims)
			if err == nil {
				out = r.Render()
			}
		case "tab2":
			scales := []int{128, 256, 384, 512, 1024}
			if *quick {
				scales = []int{128, 256, 512}
			}
			var r experiments.Tab2Result
			r, err = experiments.Tab2(scales)
			if err == nil {
				out = r.Render()
			}
		case "fig5":
			var r *experiments.EvalResult
			r, err = getEval(3e6)
			if err == nil {
				out = r.Render()
			}
		case "tab3":
			var r *experiments.EvalResult
			r, err = getEval(3e6)
			if err == nil {
				out = r.RenderTab3()
			}
		case "fig6":
			var r *experiments.EvalResult
			r, err = getEval(10e6)
			if err == nil {
				out = r.Render()
			}
		case "fig7":
			var r3, r10 *experiments.EvalResult
			r3, err = getEval(3e6)
			if err == nil {
				r10, err = getEval(10e6)
			}
			if err == nil {
				out = r3.RenderFig7() + r10.RenderFig7()
			}
		case "tab4":
			var r experiments.Tab4Result
			r, err = experiments.Tab4(simRuns, nil)
			if err == nil {
				out = r.Render()
			}
		case "conv":
			var r experiments.ConvResult
			r, err = experiments.Convergence(nil)
			if err == nil {
				out = r.Render()
			}
		case "ablate":
			var r experiments.AblateResult
			r, err = experiments.Ablate("16-12-8-4", simRuns)
			if err == nil {
				out = r.Render()
			}
		case "sens":
			var r experiments.SensResult
			r, err = experiments.Sensitivity("16-12-8-4")
			if err == nil {
				out = r.Render()
			}
		default:
			log.Fatalf("unknown experiment id %q", id)
		}
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(out)
	}
}
