// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-runs N] [-quick] [-workers N] [-no-progress] <id>...
//	experiments all
//
// IDs: fig1 fig2 fig3 fig4 tab2 fig5 tab3 fig6 fig7 tab4 conv ablate sens.
// -quick shrinks run counts and scales for a fast smoke pass; the default
// settings reproduce the paper's configuration (100-run means).
//
// The heavy experiments fan out across the internal/sweep worker pool.
// -workers bounds the pool (0 = all CPUs); results are bit-identical for
// every setting. All experiments in one invocation share a memoization
// cache, so e.g. "experiments fig5 tab3 fig7" pays for the te=3m
// evaluation sweep once.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mlckpt/internal/experiments"
	"mlckpt/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		runs       = flag.Int("runs", 0, "override simulation repetitions (0 = paper default)")
		quick      = flag.Bool("quick", false, "fast smoke settings")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = all CPUs)")
		noProgress = flag.Bool("no-progress", false, "suppress progress reporting on stderr")
	)
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "ids: fig1 fig2 fig3 fig4 tab2 fig5 tab3 fig6 fig7 tab4 conv ablate sens all")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"fig1", "fig2", "fig3", "fig4", "tab2", "fig5", "tab3", "fig6", "fig7", "tab4", "conv", "ablate", "sens"}
	}
	simRuns := *runs
	if *quick && simRuns == 0 {
		simRuns = 10
	}

	// One cache for the whole invocation: fig5/tab3/fig6/fig7 share their
	// evaluation cells, and repeated ids are free reruns.
	cache := sweep.NewCache()
	grid := func(id string) experiments.Grid {
		g := experiments.Grid{Workers: *workers, Cache: cache}
		if !*noProgress {
			g.Progress = func(done, total int, name string) {
				fmt.Fprintf(os.Stderr, "\r\033[K%s: %d/%d %s", id, done, total, name)
				if done == total {
					fmt.Fprintf(os.Stderr, "\r\033[K%s: %d jobs done\n", id, total)
				}
			}
		}
		return g
	}

	for _, id := range ids {
		var out string
		var err error
		switch id {
		case "fig1":
			out = experiments.Fig1(50).Render()
		case "fig2":
			maxScale := 1024
			if *quick {
				maxScale = 64
			}
			var r experiments.Fig2Result
			r, err = experiments.Fig2Grid(maxScale, grid(id))
			if err == nil {
				out = r.Render()
			}
		case "fig3":
			var r experiments.Fig3Result
			r, err = experiments.Fig3(9)
			if err == nil {
				out = r.Render()
			}
		case "fig4":
			ranks, real, sims := 32, 10, 400
			if *quick {
				ranks, real, sims = 16, 3, 100
			}
			var r experiments.Fig4Result
			r, err = experiments.Fig4Grid(ranks, real, sims, grid(id))
			if err == nil {
				out = r.Render()
			}
		case "tab2":
			scales := []int{128, 256, 384, 512, 1024}
			if *quick {
				scales = []int{128, 256, 512}
			}
			var r experiments.Tab2Result
			r, err = experiments.Tab2Grid(scales, grid(id))
			if err == nil {
				out = r.Render()
			}
		case "fig5":
			var r experiments.EvalResult
			r, err = experiments.EvalGrid(3e6, simRuns, nil, grid(id))
			if err == nil {
				out = r.Render()
			}
		case "tab3":
			var r experiments.EvalResult
			r, err = experiments.EvalGrid(3e6, simRuns, nil, grid(id))
			if err == nil {
				out = r.RenderTab3()
			}
		case "fig6":
			var r experiments.EvalResult
			r, err = experiments.EvalGrid(10e6, simRuns, nil, grid(id))
			if err == nil {
				out = r.Render()
			}
		case "fig7":
			var r3, r10 experiments.EvalResult
			r3, err = experiments.EvalGrid(3e6, simRuns, nil, grid(id))
			if err == nil {
				r10, err = experiments.EvalGrid(10e6, simRuns, nil, grid(id))
			}
			if err == nil {
				out = r3.RenderFig7() + r10.RenderFig7()
			}
		case "tab4":
			var r experiments.Tab4Result
			r, err = experiments.Tab4Grid(simRuns, nil, grid(id))
			if err == nil {
				out = r.Render()
			}
		case "conv":
			var r experiments.ConvResult
			r, err = experiments.Convergence(nil)
			if err == nil {
				out = r.Render()
			}
		case "ablate":
			var r experiments.AblateResult
			r, err = experiments.Ablate("16-12-8-4", simRuns)
			if err == nil {
				out = r.Render()
			}
		case "sens":
			var r experiments.SensResult
			r, err = experiments.Sensitivity("16-12-8-4")
			if err == nil {
				out = r.Render()
			}
		default:
			log.Fatalf("unknown experiment id %q", id)
		}
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(out)
	}
	if !*noProgress {
		hits, misses := cache.Stats()
		fmt.Fprintf(os.Stderr, "sweep cache: %d hits, %d misses\n", hits, misses)
	}
}
