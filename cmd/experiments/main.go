// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-runs N] [-quick] [-workers N] [-no-progress] <id>...
//	experiments -metrics-out m.json -trace-out t.json all
//
// IDs: fig1 fig2 fig3 fig4 tab2 fig5 tab3 fig6 fig7 tab4 conv ablate sens,
// plus chaos (the fault-injection grid of docs/FAULTS.md) and attrib (the
// waste-attribution breakdown of docs/OBSERVABILITY.md) — both excluded
// from "all" so the golden regression output never depends on them.
// -quick shrinks run counts and scales for a fast smoke pass; the default
// settings reproduce the paper's configuration (100-run means).
//
// -replay FILE is a standalone mode: it reads a recorded failure trace
// (the versioned JSONL format of internal/failure.WriteTrace), replays it
// deterministically through the simulator, and prints the run.
//
// The heavy experiments fan out across the internal/sweep worker pool.
// -workers bounds the pool (0 = all CPUs); results are bit-identical for
// every setting. All experiments in one invocation share a memoization
// cache, so e.g. "experiments fig5 tab3 fig7" pays for the te=3m
// evaluation sweep once.
//
// Observability (all off by default; see docs/OBSERVABILITY.md):
//
//	-metrics-out FILE  write a JSON metrics snapshot (solver convergence,
//	                   simulator event counts, cache effectiveness)
//	-trace-out FILE    write a Chrome trace-event timeline on virtual time,
//	                   byte-identical for every -workers setting
//	-pprof TARGET      addr ("localhost:6060") serves net/http/pprof;
//	                   anything else is a directory for cpu/heap profiles
//	-serve ADDR        serve live telemetry while running: /metrics
//	                   (OpenMetrics), /healthz, /events (SSE off the
//	                   streaming flight recorder), /debug/pprof. Serving
//	                   perturbs only the volatile metrics section, so the
//	                   -metrics-out/-trace-out artifacts stay byte-identical
//
// A failing experiment no longer aborts the invocation: the remaining ids
// still run, a summary lists the failures, and the exit status is 1.
// Telemetry artifacts are withheld when any experiment failed, so a file
// at -metrics-out/-trace-out always describes a complete run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mlckpt/internal/cli"
	"mlckpt/internal/experiments"
	"mlckpt/internal/failure"
	"mlckpt/internal/obs"
	"mlckpt/internal/sweep"
)

// figStat is one experiment's host-side cost: wall-clock time and heap
// allocation count around its runExperiment call. Both are volatile
// (machine- and scheduling-dependent), so they go to stderr and to
// volatile counters — never into the deterministic stdout the golden
// regression pins.
type figStat struct {
	id     string
	wall   time.Duration
	allocs uint64
	failed bool
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main behind testable seams — explicit args, explicit writers, an
// exit code instead of os.Exit — so the serve/artifact composition
// contract is pinned by in-process tests (main_test.go).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runs       = fs.Int("runs", 0, "override simulation repetitions (0 = paper default)")
		quick      = fs.Bool("quick", false, "fast smoke settings")
		workers    = fs.Int("workers", 0, "sweep worker pool size (0 = all CPUs)")
		noProgress = fs.Bool("no-progress", false, "suppress progress reporting on stderr")
		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot to this file")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace-event JSON timeline to this file")
		pprofFlag  = fs.String("pprof", "", "serve net/http/pprof on addr (host:port) or write cpu/heap profiles to a directory")
		serveAddr  = fs.String("serve", "", "serve live telemetry on addr while running (/metrics OpenMetrics, /healthz, /events, /debug/pprof)")
		replayFile = fs.String("replay", "", "replay a recorded failure trace (failure JSONL, docs/FAULTS.md) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "experiments: "+format+"\n", a...)
		return 1
	}
	if *replayFile != "" {
		f, err := os.Open(*replayFile)
		if err != nil {
			return fail("-replay: %v", err)
		}
		trace, err := failure.ReadTrace(f)
		f.Close()
		if err != nil {
			return fail("-replay %s: %v", *replayFile, err)
		}
		r, err := experiments.Replay(trace)
		if err != nil {
			return fail("-replay %s: %v", *replayFile, err)
		}
		fmt.Fprintln(stdout, r.Render())
		return 0
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		fmt.Fprintln(stderr, "ids: fig1 fig2 fig3 fig4 tab2 fig5 tab3 fig6 fig7 tab4 conv ablate sens chaos attrib all")
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"fig1", "fig2", "fig3", "fig4", "tab2", "fig5", "tab3", "fig6", "fig7", "tab4", "conv", "ablate", "sens"}
	}
	simRuns := *runs
	if *quick && simRuns == 0 {
		simRuns = 10
	}

	if *pprofFlag != "" {
		stop, err := cli.StartPprof(*pprofFlag)
		if err != nil {
			return fail("-pprof %s: %v", *pprofFlag, err)
		}
		defer stop()
	}

	// One collector and one cache for the whole invocation: fig5/tab3/
	// fig6/fig7 share their evaluation cells, and repeated ids are free
	// reruns. The collector's deterministic sections depend only on the id
	// list, never on -workers.
	collector := obs.NewCollector()
	cache := sweep.NewCache()

	// -serve attaches the streaming flight recorder beside the collector
	// and exposes both over HTTP for the lifetime of the run. The stream
	// only ever observes (Tee), so the -metrics-out/-trace-out artifacts of
	// a served run are byte-identical to an unserved run's up to the
	// volatile section (pinned by TestServeComposesWithArtifacts).
	rec := obs.Recorder(collector)
	if *serveAddr != "" {
		stream := obs.NewStream(0)
		rec = obs.Tee(collector, stream)
		ln, err := cli.Serve(*serveAddr, cli.ObsMux(collector, stream))
		if err != nil {
			return fail("-serve %s: %v", *serveAddr, err)
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "experiments: serving telemetry on http://%s\n", ln.Addr())
	}

	grid := func(id string) experiments.Grid {
		g := experiments.Grid{
			Workers: *workers,
			Cache:   cache,
			Obs:     rec,
			Clock:   obs.WallClock,
		}
		if !*noProgress {
			g.Progress = cli.Progress(os.Stderr, id)
		}
		return g
	}

	var failures []string
	stats := make([]figStat, 0, len(ids))
	var ms runtime.MemStats
	for _, id := range ids {
		runtime.ReadMemStats(&ms)
		allocs0 := ms.Mallocs
		start := time.Now()
		out, err := runExperiment(id, simRuns, *quick, grid)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		st := figStat{id: id, wall: wall, allocs: ms.Mallocs - allocs0, failed: err != nil}
		stats = append(stats, st)
		rec.CountVolatile("experiments."+id+".wall_ms", wall.Milliseconds())
		rec.CountVolatile("experiments."+id+".allocs", int64(st.allocs))
		if err != nil {
			failures = append(failures, id)
			fmt.Fprintf(stderr, "experiments: %s: %v\n", id, err)
			continue
		}
		fmt.Fprintln(stdout, out)
	}

	// Fold the cache's own view into the registry: hits/misses are pure
	// functions of the job set (deterministic); how many of the hits
	// coalesced onto in-flight computations is scheduling (volatile).
	hits, misses := cache.Stats()
	rec.Count("sweep.cache.hits", int64(hits))
	rec.Count("sweep.cache.misses", int64(misses))
	rec.CountVolatile("sweep.cache.coalesced", int64(cache.Coalesced()))

	if !*noProgress {
		printSummary(stderr, collector, stats, len(ids)-len(failures), len(failures))
	}
	if len(failures) == 0 {
		if *metricsOut != "" {
			if err := cli.WriteMetrics(collector.Registry, *metricsOut); err != nil {
				return fail("-metrics-out %s: %v", *metricsOut, err)
			}
		}
		if *traceOut != "" {
			if err := cli.WriteTrace(collector.Trace, *traceOut); err != nil {
				return fail("-trace-out %s: %v", *traceOut, err)
			}
		}
		return 0
	}
	fmt.Fprintf(stderr, "experiments: %d of %d experiments failed: %v\n", len(failures), len(ids), failures)
	if *metricsOut != "" || *traceOut != "" {
		fmt.Fprintln(stderr, "experiments: telemetry artifacts withheld (incomplete run)")
	}
	return 1
}

// runExperiment renders one experiment id. Errors — including unknown ids
// — return to the caller so one bad id cannot abort the rest of the list.
func runExperiment(id string, simRuns int, quick bool, grid func(string) experiments.Grid) (string, error) {
	switch id {
	case "fig1":
		return experiments.Fig1(50).Render(), nil
	case "fig2":
		maxScale := 1024
		if quick {
			maxScale = 64
		}
		r, err := experiments.Fig2Grid(maxScale, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig3":
		r, err := experiments.Fig3(9)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig4":
		ranks, real, sims := 32, 10, 400
		if quick {
			ranks, real, sims = 16, 3, 100
		}
		r, err := experiments.Fig4Grid(ranks, real, sims, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "tab2":
		scales := []int{128, 256, 384, 512, 1024}
		if quick {
			scales = []int{128, 256, 512}
		}
		r, err := experiments.Tab2Grid(scales, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig5":
		r, err := experiments.EvalGrid(3e6, simRuns, nil, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "tab3":
		r, err := experiments.EvalGrid(3e6, simRuns, nil, grid(id))
		if err != nil {
			return "", err
		}
		return r.RenderTab3(), nil
	case "fig6":
		r, err := experiments.EvalGrid(10e6, simRuns, nil, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig7":
		r3, err := experiments.EvalGrid(3e6, simRuns, nil, grid(id))
		if err != nil {
			return "", err
		}
		r10, err := experiments.EvalGrid(10e6, simRuns, nil, grid(id))
		if err != nil {
			return "", err
		}
		return r3.RenderFig7() + r10.RenderFig7(), nil
	case "tab4":
		r, err := experiments.Tab4Grid(simRuns, nil, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "conv":
		r, err := experiments.ConvergenceGrid(nil, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "ablate":
		r, err := experiments.Ablate("16-12-8-4", simRuns)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "sens":
		r, err := experiments.Sensitivity("16-12-8-4")
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "attrib":
		// Not part of "all": the waste-attribution breakdown validates the
		// observability pipeline (docs/OBSERVABILITY.md) against Formula 21,
		// and the golden regression output must not depend on it.
		r, err := experiments.AttribGrid(3e6, quick, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "chaos":
		// Not part of "all": the chaos grid validates the fault-injection
		// harness (docs/FAULTS.md), not a paper table, and the golden
		// regression output must not depend on it.
		r, err := experiments.ChaosGrid(16, grid(id))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	default:
		return "", fmt.Errorf("unknown experiment id %q", id)
	}
}

// printSummary replaces the old ad-hoc cache-stats line with a digest of
// the registry snapshot plus a per-experiment cost table (wall-clock and
// heap allocations, both host-side and volatile — they describe this run
// of this machine, not the reproduced results).
func printSummary(w io.Writer, c *obs.Collector, stats []figStat, succeeded, failed int) {
	for _, st := range stats {
		status := ""
		if st.failed {
			status = "  (failed)"
		}
		fmt.Fprintf(w, "experiments: %-7s %8.2fs  %12d allocs%s\n",
			st.id, st.wall.Seconds(), st.allocs, status)
	}
	snap := c.Registry.Snapshot()
	count := func(name string) int64 {
		v, _ := snap.Counter(name)
		return v
	}
	fmt.Fprintf(w,
		"experiments: %d ok, %d failed | sweep: %d jobs, cache %d hits / %d misses | solver: %d solves (%d converged) | sim: %d runs, %d failures injected | trace: %d events\n",
		succeeded, failed,
		count("sweep.jobs"),
		count("sweep.cache.hits"), count("sweep.cache.misses"),
		count("core.optimize.solves"), count("core.optimize.converged"),
		count("sim.runs"), count("sim.failures"),
		c.Trace.Len())
}
