package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlckpt/internal/obs"
)

// runArtifacts invokes run() with -metrics-out/-trace-out into a temp dir
// and returns the two artifact files.
func runArtifacts(t *testing.T, extra ...string) (metrics, trace []byte) {
	t.Helper()
	dir := t.TempDir()
	mPath, tPath := filepath.Join(dir, "m.json"), filepath.Join(dir, "t.json")
	args := append([]string{"-quick", "-no-progress", "-metrics-out", mPath, "-trace-out", tPath}, extra...)
	args = append(args, "attrib")
	var stderr bytes.Buffer
	if code := run(args, io.Discard, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d\n%s", args, code, stderr.String())
	}
	m, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

// stripVolatile parses a metrics artifact and re-serializes it without
// its volatile section and capture stamp.
func stripVolatile(t *testing.T, raw []byte) string {
	t.Helper()
	snap, err := obs.ValidateMetricsJSON(raw)
	if err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	snap.StripVolatile()
	out, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestServeComposesWithArtifacts pins the -serve contract: attaching the
// live telemetry server (flight recorder teed beside the collector) must
// not change the deterministic artifacts — the trace is byte-identical
// and the metrics differ only in their volatile section.
func TestServeComposesWithArtifacts(t *testing.T) {
	mPlain, tPlain := runArtifacts(t)
	mServed, tServed := runArtifacts(t, "-serve", "127.0.0.1:0")
	if !bytes.Equal(tPlain, tServed) {
		t.Errorf("trace artifact changed by -serve (%d vs %d bytes)", len(tPlain), len(tServed))
	}
	if a, b := stripVolatile(t, mPlain), stripVolatile(t, mServed); a != b {
		t.Errorf("deterministic metrics changed by -serve:\n--- plain ---\n%s\n--- served ---\n%s", a, b)
	}
}

// TestServeAnnouncesAddress pins the stderr announcement of the bound
// address (the handle a user follows to the live endpoints; the endpoint
// behavior itself is covered by internal/cli's serve tests).
func TestServeAnnouncesAddress(t *testing.T) {
	dir := t.TempDir()
	var stderr bytes.Buffer
	code := run([]string{"-no-progress", "-serve", "127.0.0.1:0",
		"-metrics-out", filepath.Join(dir, "m.json"), "fig1"}, io.Discard, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "serving telemetry on http://127.0.0.1:") {
		t.Errorf("no serve announcement on stderr:\n%s", stderr.String())
	}
}

// TestRunUnknownIDFails: one bad id fails the invocation (exit 1) but
// does not abort the other ids.
func TestRunUnknownIDFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-progress", "nope", "fig1"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Figure 1") && stdout.Len() == 0 {
		t.Errorf("fig1 output missing despite bad sibling id:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), `unknown experiment id "nope"`) {
		t.Errorf("missing unknown-id error:\n%s", stderr.String())
	}
}
