package mlckpt

import (
	"math"
	"testing"
)

// FuzzOptimizeNeverPanics is the Spec-validation fuzz gate: whatever
// numbers a caller throws at the facade, Optimize must either return a
// sane plan or a proper error — never panic, never hand back NaN/Inf.
func FuzzOptimizeNeverPanics(f *testing.F) {
	f.Add(3e6, 0.876, 1e6, 60.0, 16.0, 12.0, 8.0, 4.0, 0.866, 2.586, 3.886, 5.5, 0.0212, uint8(0))
	f.Add(1e5, 0.5, 1e4, 10.0, 4.0, 3.0, 2.0, 1.0, 1.0, 3.0, 5.0, 20.0, 0.0, uint8(1))
	f.Add(0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint8(2))
	f.Add(math.Inf(1), math.NaN(), -5.0, 1e300, -16.0, 1e-300, math.Inf(-1), 4.0,
		math.NaN(), 0.0, -3.0, 5.5, math.Inf(1), uint8(3))
	f.Add(1e-8, 1e8, 2.0, 1e-8, 1e6, 1e6, 1e6, 1e6, 1e-9, 1e-9, 1e-9, 1e-9, 1e9, uint8(7))

	f.Fuzz(func(t *testing.T, te, kappa, nStar, alloc,
		r1, r2, r3, r4, c1, c2, c3, c4, slope4 float64, polIdx uint8) {
		spec := Spec{
			TeCoreDays:     te,
			Speedup:        SpeedupSpec{Kind: "quadratic", Kappa: kappa, IdealScale: nStar},
			AllocSeconds:   alloc,
			FailuresPerDay: []float64{r1, r2, r3, r4},
			Levels: []LevelSpec{
				{CheckpointConst: c1},
				{CheckpointConst: c2},
				{CheckpointConst: c3},
				{CheckpointConst: c4, CheckpointSlope: slope4},
			},
		}
		pol := Policies[int(polIdx)%len(Policies)]
		plan, err := Optimize(spec, pol)
		if err != nil {
			return
		}
		if plan.Scale <= 0 {
			t.Fatalf("accepted spec produced non-positive scale %d (spec %+v)", plan.Scale, spec)
		}
		if math.IsNaN(plan.ExpectedWallClockDays) || math.IsInf(plan.ExpectedWallClockDays, 0) || plan.ExpectedWallClockDays < 0 {
			t.Fatalf("accepted spec produced E(T_w) = %g days (spec %+v)", plan.ExpectedWallClockDays, spec)
		}
		if len(plan.Intervals) != len(spec.Levels) {
			t.Fatalf("plan has %d interval entries for %d levels", len(plan.Intervals), len(spec.Levels))
		}
		for i, iv := range plan.Intervals {
			if iv < 1 {
				t.Fatalf("level %d interval %d < 1", i+1, iv)
			}
		}
		for _, x := range plan.X {
			if math.IsNaN(x) || x < 1 {
				t.Fatalf("unrounded schedule entry %g < 1", x)
			}
		}
	})
}
