GO ?= go

.PHONY: build test race short fuzz golden bench bench-diff bench-smoke lint lint-fix-report allocgate-baseline

build:
	$(GO) build ./...

# Tier-1 gate: everything must build, vet clean, lint clean, and pass.
# mlckptlint (cmd/mlckptlint, docs/LINT.md) enforces the determinism
# invariants the paper reproduction depends on: no ambient nondeterminism
# in model packages, no order-sensitive map iteration, no exact float
# equality outside tests, no unsynchronized captured writes from
# loop-launched goroutines — plus the module-wide checks: seed provenance
# (seedflow), fiber-blocking reachability (batonblock), and hot-path
# allocation idioms (hotpath). allocgate is the compiler-verified half of
# the //mlckpt:hotpath contract (escape analysis vs allocgate.baseline).
test:
	$(GO) vet ./...
	$(GO) run ./cmd/mlckptlint ./...
	$(GO) run ./cmd/allocgate
	$(GO) test ./...

# The full static-analysis gate: all seven analyzers, then the escape-
# analysis baseline check (file:line diagnostics, exit 1 on findings).
lint:
	$(GO) run ./cmd/mlckptlint ./...
	$(GO) run ./cmd/allocgate

# Regenerate allocgate.baseline after an intentional allocation-profile
# change in a //mlckpt:hotpath function. The diff is printed loudly: every
# line is a heap escape the compiler now reports (or no longer reports)
# on a hot path, and belongs in review next to the code that caused it.
allocgate-baseline:
	$(GO) run ./cmd/allocgate -update
	@git --no-pager diff --exit-code -- allocgate.baseline \
		&& echo "allocgate.baseline unchanged" \
		|| echo "allocgate.baseline CHANGED (diff above) — commit it with the code change that explains it"

# Findings as machine-readable JSON, for editors and fix scripts.
lint-fix-report:
	$(GO) run ./cmd/mlckptlint -json ./...

# Concurrency gate: the full suite under the race detector, including the
# workers=1 vs workers=8 sweep determinism tests. The heaviest golden
# reproductions (Figure 4) skip themselves under -race; run `make test`
# for the exact-number gate.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Quick smoke pass (skips the full-scale golden reproductions).
short:
	$(GO) test -short ./...

# Bounded fuzz sessions for the Spec-validation, cache-key, and
# linter-robustness invariants.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzOptimizeNeverPanics -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzKeyEquality -fuzztime 30s ./internal/sweep
	$(GO) test -run '^$$' -fuzz FuzzLintNeverPanics -fuzztime 30s ./internal/lint

# Regenerate the golden reference after an intentional numbers change.
# Review the diff before committing: every change here is a change to the
# reproduced paper results.
golden:
	$(GO) run ./cmd/experiments -no-progress all > docs_results_reference.txt

# Benchmark snapshot: fixed -benchtime/-count so runs are comparable, the
# text output archived as JSON (ns/op, B/op, allocs/op per benchmark) via
# cmd/benchsnap. Commit BENCH_<date>.json to track baselines in git.
BENCH_DATE := $(shell date +%Y-%m-%d)
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -count 1 ./... \
		| tee /dev/stderr | $(GO) run ./cmd/benchsnap > BENCH_$(BENCH_DATE).json

# Diff a fresh full benchmark run against the newest committed snapshot
# (override with BENCH_BASE=BENCH_<date>.json). Exit 1 when any benchmark
# regressed by more than BENCH_THRESHOLD percent in ns/op or allocs/op;
# see docs/PERF.md for the workflow.
BENCH_BASE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
BENCH_THRESHOLD ?= 50
bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -count 1 ./... \
		| $(GO) run ./cmd/benchsnap -compare $(BENCH_BASE) -threshold $(BENCH_THRESHOLD)

# CI benchmark smoke: only the erasure kernels and the core simulator
# loop, with a deliberately generous threshold — shared CI runners are
# noisy, so this gate catches order-of-magnitude regressions (a disabled
# SIMD path, an allocation storm), not percent-level drift.
bench-smoke:
	{ $(GO) test -run '^$$' -bench 'BenchmarkEncode|BenchmarkReconstruct' -benchmem -benchtime 1x -count 1 ./internal/erasure/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSimulateRun$$' -benchmem -benchtime 1x -count 1 . ; } \
		| $(GO) run ./cmd/benchsnap -compare $(BENCH_BASE) -threshold 900
