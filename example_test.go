package mlckpt_test

import (
	"fmt"

	"mlckpt"
)

// ExampleOptimize shows the core workflow: describe the application and
// machine, get an optimized checkpoint plan.
func ExampleOptimize() {
	spec := mlckpt.PaperSpec(3e6, []float64{16, 12, 8, 4})
	plan, err := mlckpt.Optimize(spec, mlckpt.MLOptScale)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %v\n", plan.Converged)
	fmt.Printf("levels: %d\n", len(plan.Intervals))
	fmt.Printf("scale below ideal: %v\n", plan.Scale < 1_000_000)
	// Output:
	// converged: true
	// levels: 4
	// scale below ideal: true
}

// ExampleOptimize_policies compares the four strategies of the paper's
// evaluation on the analytic model.
func ExampleOptimize_policies() {
	spec := mlckpt.PaperSpec(3e6, []float64{8, 6, 4, 2})
	mlOpt, _ := mlckpt.Optimize(spec, mlckpt.MLOptScale)
	mlOri, _ := mlckpt.Optimize(spec, mlckpt.MLOriScale)
	fmt.Printf("joint optimization beats fixed scale: %v\n",
		mlOpt.ExpectedWallClockDays < mlOri.ExpectedWallClockDays)
	fmt.Printf("fixed-scale baseline uses all cores: %v\n", mlOri.Scale == 1_000_000)
	// Output:
	// joint optimization beats fixed scale: true
	// fixed-scale baseline uses all cores: true
}

// ExampleSimulate validates a plan stochastically.
func ExampleSimulate() {
	spec := mlckpt.PaperSpec(3e6, []float64{16, 12, 8, 4})
	plan, _ := mlckpt.Optimize(spec, mlckpt.MLOptScale)
	rep, err := mlckpt.Simulate(spec, plan, mlckpt.SimOptions{Runs: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("runs: %d\n", rep.Runs)
	fmt.Printf("portions cover the wall clock: %v\n",
		rep.ProductiveDays+rep.CheckpointDays+rep.RestartDays+rep.RollbackDays > 0.99*rep.MeanWallClockDays)
	// Output:
	// runs: 10
	// portions cover the wall clock: true
}

// ExampleOptimizeWithSelection shows level-subset selection: a useless
// level is dropped and its failures escalate upward.
func ExampleOptimizeWithSelection() {
	spec := mlckpt.PaperSpec(1e6, []float64{16, 12, 0, 4})
	spec.Levels[2].CheckpointConst = 2000 // expensive and failure-free
	sel, err := mlckpt.OptimizeWithSelection(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("level 3 kept: %v\n", sel.EnabledLevels[2])
	fmt.Printf("top level kept: %v\n", sel.EnabledLevels[3])
	// Output:
	// level 3 kept: false
	// top level kept: true
}
