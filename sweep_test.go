package mlckpt

import (
	"encoding/json"
	"reflect"
	"testing"
)

func sweepTestJobs() []SweepJob {
	var jobs []SweepJob
	for _, rates := range [][]float64{{16, 12, 8, 4}, {8, 6, 4, 2}} {
		for _, pol := range []Policy{MLOptScale, SLOptScale} {
			jobs = append(jobs, SweepJob{
				Spec:   PaperSpec(3e6, rates),
				Policy: pol,
				Sim:    &SimOptions{Runs: 20},
			})
		}
	}
	return jobs
}

// marshalOutcomes canonicalizes a sweep result for byte comparison,
// dropping CacheHit (execution metadata that legitimately varies with
// scheduling).
func marshalOutcomes(t *testing.T, outs []SweepOutcome) string {
	t.Helper()
	for i := range outs {
		if outs[i].Err != nil {
			t.Fatalf("job %d (%s): %v", i, outs[i].Name, outs[i].Err)
		}
		outs[i].CacheHit = false
	}
	blob, err := json.Marshal(outs)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestSweepDeterministicAcrossWorkers is the concurrency-correctness gate:
// the same sweep must produce byte-identical results for every worker
// count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	want := marshalOutcomes(t, Sweep(sweepTestJobs(), SweepOptions{Workers: 1}))
	for _, workers := range []int{2, 8} {
		got := marshalOutcomes(t, Sweep(sweepTestJobs(), SweepOptions{Workers: workers}))
		if got != want {
			t.Errorf("workers=%d diverges from workers=1:\n got %s\nwant %s", workers, got, want)
		}
	}
}

// TestSweepMatchesDirectCalls pins the facade to the serial API: a sweep
// job with an explicit seed must reproduce Optimize+Simulate exactly.
func TestSweepMatchesDirectCalls(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	sim := SimOptions{Runs: 25, Seed: 99}
	outs := Sweep([]SweepJob{{Spec: spec, Policy: MLOptScale, Sim: &sim}}, SweepOptions{Workers: 4})
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	plan, err := Optimize(spec, MLOptScale)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Simulate(spec, plan, sim)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs[0].Plan, plan) {
		t.Errorf("sweep plan %+v != direct plan %+v", outs[0].Plan, plan)
	}
	if outs[0].Report == nil || !reflect.DeepEqual(*outs[0].Report, report) {
		t.Errorf("sweep report %+v != direct report %+v", outs[0].Report, report)
	}
}

// TestSweepSharesEqualSolves: jobs differing only in simulation settings
// must pay for Algorithm 1 once.
func TestSweepSharesEqualSolves(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	jobs := make([]SweepJob, 4)
	for i := range jobs {
		jobs[i] = SweepJob{Spec: spec, Policy: MLOptScale, Sim: &SimOptions{Runs: 5, Seed: uint64(i + 1)}}
	}
	outs := Sweep(jobs, SweepOptions{Workers: 1}) // serial: hit order is deterministic
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if wantHit := i > 0; o.CacheHit != wantHit {
			t.Errorf("job %d: CacheHit = %v, want %v", i, o.CacheHit, wantHit)
		}
		if !reflect.DeepEqual(o.Plan, outs[0].Plan) {
			t.Errorf("job %d: cached plan differs", i)
		}
	}
	// Cached plans must not share backing arrays: mutating one outcome
	// cannot corrupt another.
	outs[0].Plan.Intervals[0] = -1
	if outs[1].Plan.Intervals[0] == -1 {
		t.Error("cached outcomes share Intervals backing array")
	}
}

// TestSweepIsolatesJobErrors: one invalid spec fails its own cell only.
func TestSweepIsolatesJobErrors(t *testing.T) {
	bad := PaperSpec(3e6, []float64{16, 12, 8, 4})
	bad.TeCoreDays = -1
	jobs := []SweepJob{
		{Name: "bad", Spec: bad, Policy: MLOptScale},
		{Name: "good", Spec: PaperSpec(3e6, []float64{16, 12, 8, 4}), Policy: MLOptScale},
	}
	outs := Sweep(jobs, SweepOptions{Workers: 2})
	if outs[0].Err == nil {
		t.Error("invalid spec did not error")
	}
	if outs[1].Err != nil {
		t.Errorf("valid job poisoned by invalid sibling: %v", outs[1].Err)
	}
	if outs[1].Plan.Scale <= 0 {
		t.Errorf("valid job has no plan: %+v", outs[1].Plan)
	}
}

// TestSweepDefaults: empty policy resolves to MLOptScale, names are
// auto-generated, optimize-only jobs have no report.
func TestSweepDefaults(t *testing.T) {
	outs := Sweep([]SweepJob{{Spec: PaperSpec(3e6, []float64{16, 12, 8, 4})}}, SweepOptions{})
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	if outs[0].Policy != MLOptScale {
		t.Errorf("default policy = %q", outs[0].Policy)
	}
	if outs[0].Name == "" {
		t.Error("no auto-generated name")
	}
	if outs[0].Report != nil {
		t.Error("optimize-only job has a report")
	}
}

// TestSweepProgressReported: the callback sees every job exactly once and
// a consistent total.
func TestSweepProgressReported(t *testing.T) {
	jobs := sweepTestJobs()
	for i := range jobs {
		jobs[i].Sim = nil
	}
	calls := 0
	outs := Sweep(jobs, SweepOptions{Workers: 2, Progress: func(done, total int, name string) {
		calls++
		if total != len(jobs) {
			t.Errorf("total = %d, want %d", total, len(jobs))
		}
		if done < 1 || done > total {
			t.Errorf("done = %d out of range", done)
		}
	}})
	if calls != len(jobs) {
		t.Errorf("progress called %d times, want %d", calls, len(jobs))
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
}
