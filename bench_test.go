// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each regenerating its experiment end to end (scaled-down run
// counts so a full -bench=. pass stays in minutes; cmd/experiments runs the
// paper-sized configurations). Ablation benchmarks cover the design choices
// called out in DESIGN.md.
package mlckpt

import (
	"testing"

	"mlckpt/internal/core"
	"mlckpt/internal/experiments"
	"mlckpt/internal/failure"
	"mlckpt/internal/sim"
	"mlckpt/internal/stats"
)

// BenchmarkFig1 regenerates the Figure 1 tradeoff series.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(50)
		if r.PeakWithCkpt >= r.PeakOriginal {
			b.Fatal("peak did not shift left")
		}
	}
}

// BenchmarkFig2 regenerates the speedup curves and quadratic fits of
// Figure 2 (heat runs up to 128 ranks per iteration).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(128)
		if err != nil {
			b.Fatal(err)
		}
		if r.Heat.Fit.Kappa <= 0 {
			b.Fatal("bad fit")
		}
	}
}

// BenchmarkFig3 regenerates the single-level optimum confirmation
// (x*≈797/N*≈81,746 and x*≈140/N*≈20,215).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(9)
		if err != nil {
			b.Fatal(err)
		}
		if r.Constant.XStar < 790 || r.Constant.XStar > 805 {
			b.Fatalf("x* = %g", r.Constant.XStar)
		}
	}
}

// BenchmarkFig4 regenerates the simulator-validation comparison (real
// heat+FTI executions vs the event-driven simulator).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(16, 2, 50)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkTab2 regenerates the Table II overhead characterization and fit.
func BenchmarkTab2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab2([]int{128, 256, 512})
		if err != nil {
			b.Fatal(err)
		}
		if r.Fitted[3].IsConstant() {
			b.Fatal("level-4 growth not detected")
		}
	}
}

// BenchmarkFig5 regenerates the Te=3M-core-day time analysis (one failure
// case per iteration; cmd/experiments sweeps all six).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Eval(3e6, 10, []string{"16-12-8-4"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3 regenerates the optimized-scale table (solver only — the
// scales come from the optimization, not the simulation).
func BenchmarkTab3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range experiments.FailureCases {
			sc := experiments.EvalScenario(3e6, spec)
			sol, err := core.MLOptScale.Solve(sc.Params(), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if sol.N >= 1e6 {
				b.Fatalf("%s: scale not optimized", spec)
			}
		}
	}
}

// BenchmarkFig6 regenerates the Te=10M-core-day time analysis (one case).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Eval(10e6, 10, []string{"8-6-4-2"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the efficiency comparison.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Eval(3e6, 10, []string{"4-3-2-1"})
		if err != nil {
			b.Fatal(err)
		}
		if r.RenderFig7() == "" {
			b.Fatal("empty efficiency table")
		}
	}
}

// BenchmarkTab4 regenerates the constant-PFS-cost study (one case).
func BenchmarkTab4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tab4(10, []string{"8-6-4-2"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergence regenerates the Algorithm 1 iteration-count study.
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Convergence(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if !row.Converged {
				b.Fatalf("%s did not converge", row.Spec)
			}
		}
	}
}

// BenchmarkOptimize measures one full Algorithm 1 solve — the cost a
// scheduler would pay per submitted job.
func BenchmarkOptimize(b *testing.B) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(spec, MLOptScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Batch is the Figure 4 study at a larger scale point (32
// ranks, doubled real-run averaging) — the configuration the batched grid
// path has to keep affordable.
func BenchmarkFig4Batch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(32, 4, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkOptimizeBatch measures the batched Algorithm 1 surface on a
// full evaluation grid — all six failure cases across all four policies in
// one lockstep core.OptimizeBatch call (the shape RunGrid submits).
func BenchmarkOptimizeBatch(b *testing.B) {
	var problems []core.Problem
	for _, spec := range experiments.FailureCases {
		sc := experiments.EvalScenario(3e6, spec)
		for _, pol := range core.Policies {
			prob, err := pol.BatchProblem(sc.Params(), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			problems = append(problems, prob)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, out := range core.OptimizeBatch(problems) {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	}
}

// BenchmarkSimulateRun measures one simulated execution.
func BenchmarkSimulateRun(b *testing.B) {
	sc := experiments.EvalScenario(3e6, "16-12-8-4")
	p := sc.Params()
	sol, err := core.MLOptScale.Solve(p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{Params: p, N: sol.N, X: sol.X, JitterRatio: 0.3}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, rng.Split()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md section 5) ---

// BenchmarkAblationNumericGradN compares the analytic Formula (24) scale
// search against the finite-difference variant.
func BenchmarkAblationNumericGradN(b *testing.B) {
	sc := experiments.EvalScenario(3e6, "16-12-8-4")
	p := sc.Params()
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("numeric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(p, core.Options{NumericGradN: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDamping compares undamped Algorithm 1 (the paper's
// setting) with outer-loop damping.
func BenchmarkAblationDamping(b *testing.B) {
	sc := experiments.EvalScenario(3e6, "16-12-8-4")
	p := sc.Params()
	for _, d := range []float64{0, 0.3, 0.6} {
		damping := d
		b.Run(prettyFloat(damping), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(p, core.Options{Damping: damping}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJitter measures the jitter sensitivity of the simulated
// wall clock.
func BenchmarkAblationJitter(b *testing.B) {
	sc := experiments.EvalScenario(3e6, "16-12-8-4")
	p := sc.Params()
	sol, err := core.MLOptScale.Solve(p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []float64{0, 0.3} {
		jit := j
		b.Run(prettyFloat(jit), func(b *testing.B) {
			cfg := sim.Config{Params: p, N: sol.N, X: sol.X, JitterRatio: jit}
			rng := stats.NewRNG(3)
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, rng.Split()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistribution compares exponential vs Weibull failure
// interarrivals in the simulator.
func BenchmarkAblationDistribution(b *testing.B) {
	sc := experiments.EvalScenario(3e6, "16-12-8-4")
	p := sc.Params()
	sol, err := core.MLOptScale.Solve(p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exponential", func(b *testing.B) {
		cfg := sim.Config{Params: p, N: sol.N, X: sol.X}
		rng := stats.NewRNG(5)
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, rng.Split()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weibull", func(b *testing.B) {
		cfg := sim.Config{Params: p, N: sol.N, X: sol.X, Dist: failure.Weibull, WeibullShape: 0.7}
		rng := stats.NewRNG(5)
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, rng.Split()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEngine compares the event-driven engine against the
// paper-style 1-second tick engine on the same configuration.
func BenchmarkAblationEngine(b *testing.B) {
	sc := experiments.EvalScenario(3e6, "4-2-1-0.5")
	p := sc.Params()
	sol, err := core.MLOptScale.Solve(p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{Params: p, N: sol.N, X: sol.X}
	b.Run("event", func(b *testing.B) {
		rng := stats.NewRNG(7)
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, rng.Split()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tick", func(b *testing.B) {
		rng := stats.NewRNG(7)
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunTicks(cfg, 1, rng.Split()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func prettyFloat(v float64) string {
	switch v {
	case 0:
		return "0"
	case 0.3:
		return "0.3"
	case 0.6:
		return "0.6"
	default:
		return "x"
	}
}
