package mlckpt

import (
	"math"
	"testing"

	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/overhead"
)

// TestEndToEndPaperPipeline exercises the whole repository the way the
// paper's methodology chains its pieces:
//
//  1. characterize FTI checkpoint overheads by running the real
//     application on the simulated cluster at several scales;
//  2. fit per-level cost models from the characterization (Table II);
//  3. feed the fitted models into the optimizer (Algorithm 1);
//  4. validate the resulting plan with the stochastic simulator;
//  5. confirm the optimized plan beats the naive full-machine plan.
func TestEndToEndPaperPipeline(t *testing.T) {
	// --- 1. Characterization runs (small scales for test speed). ---
	scales := []int{32, 64, 128}
	fcfg := fti.DefaultConfig()
	var table [][]float64
	for _, n := range scales {
		hcfg := heat.Config{GridX: 256, GridY: 256, Iterations: 5, CellTime: 1e-7, TopTemp: 100}
		cluster, err := fti.NewCluster(n, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		durs := make([]float64, fti.Levels)
		if _, err := mpisim.Run(n, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
			s, err := heat.NewSolver(r, hcfg)
			if err != nil {
				panic(err)
			}
			agent := cluster.Attach(r)
			s.Run(func(s *heat.Solver) bool {
				if it := s.Iteration(); it >= 1 && it <= fti.Levels {
					d, err := agent.Checkpoint(it, s.Serialize())
					if err != nil {
						panic(err)
					}
					if r.ID() == 0 {
						durs[it-1] = d
					}
				}
				return true
			})
		}); err != nil {
			t.Fatal(err)
		}
		table = append(table, durs)
	}

	// --- 2. Fit the cost models. ---
	fitted, err := overhead.Fit(overhead.Characterization{
		Scales: []float64{32, 64, 128},
		Costs:  table,
	}, overhead.FitOptions{})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}

	// --- 3. Optimize with the fitted costs (scaled-up machine). ---
	spec := Spec{
		TeCoreDays: 1e4,
		Speedup:    SpeedupSpec{Kind: "quadratic", Kappa: 0.5, IdealScale: 1e5},
		Levels:     make([]LevelSpec, fti.Levels),
		// Costs are tiny on the test problem; scale them up to exercise
		// the tradeoff meaningfully.
		AllocSeconds:   30,
		FailuresPerDay: []float64{16, 12, 8, 4},
	}
	for i, c := range fitted {
		spec.Levels[i] = LevelSpec{
			CheckpointConst: c.Const * 1000,
			CheckpointSlope: c.Coeff * 1000,
		}
	}
	plan, err := Optimize(spec, MLOptScale)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if !plan.Converged || plan.Scale <= 0 || plan.Scale > 1e5 {
		t.Fatalf("plan: %+v", plan)
	}

	// --- 4. Simulate the plan. ---
	rep, err := Simulate(spec, plan, SimOptions{Runs: 30, Seed: 3})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if rep.TruncatedRuns != 0 {
		t.Fatalf("truncated runs: %d", rep.TruncatedRuns)
	}
	rel := (rep.MeanWallClockDays - plan.ExpectedWallClockDays) / plan.ExpectedWallClockDays
	if rel < -0.15 || rel > 0.6 {
		t.Errorf("sim %g vs model %g days", rep.MeanWallClockDays, plan.ExpectedWallClockDays)
	}

	// --- 5. Compare against the full-machine baseline. ---
	ori, err := Optimize(spec, MLOriScale)
	if err != nil {
		t.Fatal(err)
	}
	oriRep, err := Simulate(spec, ori, SimOptions{Runs: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanWallClockDays >= oriRep.MeanWallClockDays*1.02 {
		t.Errorf("optimized plan (%g d) not better than full machine (%g d)",
			rep.MeanWallClockDays, oriRep.MeanWallClockDays)
	}
	if math.IsNaN(rep.Efficiency) || rep.Efficiency <= oriRep.Efficiency {
		t.Errorf("optimized efficiency %g not above full-machine %g",
			rep.Efficiency, oriRep.Efficiency)
	}
}
