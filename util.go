package mlckpt

import "mlckpt/internal/stats"

// ci95 is the 95% confidence half-width of the mean of xs.
func ci95(xs []float64) float64 {
	return stats.CI95(xs)
}

// PaperSpec returns the Section IV evaluation problem as a Spec: the
// workload in core-days, the exascale Table II cost models (level-4 PFS
// cost saturating at 256Ki clients; see DESIGN.md), allocation period 60 s,
// and a failure case in the paper's "r1-r2-r3-r4" notation.
func PaperSpec(teCoreDays float64, failuresPerDay []float64) Spec {
	return Spec{
		TeCoreDays: teCoreDays,
		Speedup:    SpeedupSpec{Kind: "quadratic", Kappa: 0.46, IdealScale: 1e6},
		Levels: []LevelSpec{
			{CheckpointConst: 0.866},
			{CheckpointConst: 2.586},
			{CheckpointConst: 3.886},
			{CheckpointConst: 5.5, CheckpointSlope: 0.0212, SaturationCap: 262144},
		},
		AllocSeconds:   60,
		FailuresPerDay: failuresPerDay,
	}
}
