module mlckpt

go 1.22
