// Package mlckpt optimizes multilevel checkpoint/restart configurations
// for HPC applications with uncertain execution scales, implementing
// S. Di, L. Bautista-Gomez, F. Cappello, "Optimization of a Multilevel
// Checkpoint Model with Uncertain Execution Scales" (SC 2014).
//
// Given an application's workload, speedup curve, per-level checkpoint and
// recovery cost models, and per-level failure rates, it jointly computes
// the optimal number of checkpoint intervals for every level and the
// optimal number of processes/cores (Algorithm 1 of the paper), and can
// validate any plan with a stochastic execution simulator.
//
// Quick start:
//
//	spec := mlckpt.Spec{
//		TeCoreDays: 3e6,
//		Speedup:    mlckpt.SpeedupSpec{Kind: "quadratic", Kappa: 0.46, IdealScale: 1e6},
//		Levels: []mlckpt.LevelSpec{
//			{CheckpointConst: 0.866}, {CheckpointConst: 2.586},
//			{CheckpointConst: 3.886}, {CheckpointConst: 5.5, CheckpointSlope: 0.0212},
//		},
//		AllocSeconds:   60,
//		FailuresPerDay: []float64{16, 12, 8, 4},
//	}
//	plan, err := mlckpt.Optimize(spec, mlckpt.MLOptScale)
//	report, err := mlckpt.Simulate(spec, plan, mlckpt.SimOptions{Runs: 100})
//
// The subpackages under internal/ hold the substrates: the analytic model,
// the solvers, the event-driven simulator, and the mpisim/FTI/heat stack
// used to reproduce the paper's cluster experiments.
package mlckpt

import (
	"errors"
	"fmt"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/obs"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
)

// ErrSpec is returned for invalid specifications.
var ErrSpec = errors.New("mlckpt: invalid spec")

// Policy names the four strategies of the paper's evaluation.
type Policy string

// Available policies.
const (
	// MLOptScale is the paper's contribution: multilevel checkpoints with
	// jointly optimized intervals and execution scale.
	MLOptScale Policy = "ml-opt-scale"
	// SLOptScale is the single-level (PFS-only) model with optimized
	// intervals and scale (Jin et al.).
	SLOptScale Policy = "sl-opt-scale"
	// MLOriScale optimizes multilevel intervals at the application's ideal
	// scale (the authors' prior work).
	MLOriScale Policy = "ml-ori-scale"
	// SLOriScale is classic Young's formula on the PFS at the ideal scale.
	SLOriScale Policy = "sl-ori-scale"
)

// Policies lists all supported policies.
var Policies = []Policy{MLOptScale, SLOptScale, MLOriScale, SLOriScale}

func (p Policy) internal() (core.Policy, error) {
	switch p {
	case MLOptScale:
		return core.MLOptScale, nil
	case SLOptScale:
		return core.SLOptScale, nil
	case MLOriScale:
		return core.MLOriScale, nil
	case SLOriScale:
		return core.SLOriScale, nil
	default:
		return 0, fmt.Errorf("%w: unknown policy %q", ErrSpec, string(p))
	}
}

// SpeedupSpec selects and parameterizes the speedup curve g(N).
type SpeedupSpec struct {
	// Kind is one of "quadratic" (the paper's Formula 12), "linear",
	// "amdahl", "gustafson", or "table" (piecewise-linear through Points).
	Kind string `json:"kind"`
	// Kappa is the slope at the origin (quadratic, linear).
	Kappa float64 `json:"kappa,omitempty"`
	// IdealScale is N^(*): the quadratic's peak, or the admissible scale
	// ceiling for the other kinds. Ignored for "table" (the peak sample
	// decides).
	IdealScale float64 `json:"idealScale"`
	// SerialFraction parameterizes Amdahl/Gustafson curves.
	SerialFraction float64 `json:"serialFraction,omitempty"`
	// Points holds measured [scale, speedup] pairs for kind "table".
	Points [][2]float64 `json:"points,omitempty"`
}

// Model materializes the speedup model.
func (s SpeedupSpec) Model() (speedup.Model, error) {
	if s.Kind == "table" {
		samples := make([]speedup.Sample, len(s.Points))
		for i, p := range s.Points {
			samples[i] = speedup.Sample{N: p[0], Speedup: p[1]}
		}
		m, err := speedup.NewInterpolated(samples)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		return m, nil
	}
	if s.IdealScale <= 0 {
		return nil, fmt.Errorf("%w: idealScale %g", ErrSpec, s.IdealScale)
	}
	switch s.Kind {
	case "", "quadratic":
		if s.Kappa <= 0 {
			return nil, fmt.Errorf("%w: quadratic needs kappa > 0", ErrSpec)
		}
		return speedup.Quadratic{Kappa: s.Kappa, NStar: s.IdealScale}, nil
	case "linear":
		if s.Kappa <= 0 {
			return nil, fmt.Errorf("%w: linear needs kappa > 0", ErrSpec)
		}
		return speedup.Linear{Kappa: s.Kappa, MaxScale: s.IdealScale}, nil
	case "amdahl":
		return speedup.Amdahl{SerialFraction: s.SerialFraction, MaxScale: s.IdealScale}, nil
	case "gustafson":
		return speedup.Gustafson{SerialFraction: s.SerialFraction, MaxScale: s.IdealScale}, nil
	default:
		return nil, fmt.Errorf("%w: unknown speedup kind %q", ErrSpec, s.Kind)
	}
}

// LevelSpec is one checkpoint level's cost model:
// C(N) = CheckpointConst + CheckpointSlope·min(N, SaturationCap),
// R(N) = RecoveryConst + RecoverySlope·min(N, SaturationCap).
// A zero RecoveryConst with zero RecoverySlope defaults recovery to half
// the checkpoint cost (the repository's documented assumption; the paper
// does not publish recovery overheads).
type LevelSpec struct {
	CheckpointConst float64 `json:"checkpointConst"`
	CheckpointSlope float64 `json:"checkpointSlope,omitempty"`
	RecoveryConst   float64 `json:"recoveryConst,omitempty"`
	RecoverySlope   float64 `json:"recoverySlope,omitempty"`
	SaturationCap   float64 `json:"saturationCap,omitempty"`
}

// Spec is a complete problem description.
type Spec struct {
	// TeCoreDays is the workload: failure-free single-core productive time
	// in core-days.
	TeCoreDays float64     `json:"teCoreDays"`
	Speedup    SpeedupSpec `json:"speedup"`
	Levels     []LevelSpec `json:"levels"`
	// AllocSeconds is the resource (re)allocation period A.
	AllocSeconds float64 `json:"allocSeconds"`
	// FailuresPerDay holds r_1..r_L at the baseline scale.
	FailuresPerDay []float64 `json:"failuresPerDay"`
	// BaselineScale is N_b; zero defaults to Speedup.IdealScale.
	BaselineScale float64 `json:"baselineScale,omitempty"`
}

// Params materializes the analytic model parameters.
func (s Spec) Params() (*model.Params, error) {
	if s.TeCoreDays <= 0 {
		return nil, fmt.Errorf("%w: teCoreDays %g", ErrSpec, s.TeCoreDays)
	}
	g, err := s.Speedup.Model()
	if err != nil {
		return nil, err
	}
	if len(s.Levels) == 0 {
		return nil, fmt.Errorf("%w: no levels", ErrSpec)
	}
	if len(s.FailuresPerDay) != len(s.Levels) {
		return nil, fmt.Errorf("%w: %d failure rates for %d levels", ErrSpec, len(s.FailuresPerDay), len(s.Levels))
	}
	levels := make([]overhead.Level, len(s.Levels))
	for i, l := range s.Levels {
		ck := overhead.Cost{Const: l.CheckpointConst, Coeff: l.CheckpointSlope, H: overhead.LinearN, Cap: l.SaturationCap}
		if l.CheckpointSlope == 0 {
			ck.H = overhead.Zero
		}
		rc := overhead.Cost{Const: l.RecoveryConst, Coeff: l.RecoverySlope, H: overhead.LinearN, Cap: l.SaturationCap}
		if l.RecoveryConst == 0 && l.RecoverySlope == 0 {
			rc = overhead.Cost{Const: ck.Const / 2, Coeff: ck.Coeff / 2, H: ck.H, Cap: ck.Cap}
		} else if l.RecoverySlope == 0 {
			rc.H = overhead.Zero
		}
		levels[i] = overhead.Level{Checkpoint: ck, Recovery: rc}
	}
	baseline := s.BaselineScale
	if baseline <= 0 {
		baseline = s.Speedup.IdealScale
	}
	p := &model.Params{
		Te:      s.TeCoreDays * failure.SecondsPerDay,
		Speedup: g,
		Levels:  levels,
		Alloc:   s.AllocSeconds,
		Rates:   failure.Rates{PerDay: append([]float64(nil), s.FailuresPerDay...), Baseline: baseline},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Plan is an optimized checkpoint configuration.
type Plan struct {
	Policy Policy `json:"policy"`
	// Intervals holds the rounded optimal interval counts for every level
	// of the original problem (1 = no checkpoints at that level).
	Intervals []int `json:"intervals"`
	// X is the unrounded schedule fed to the simulator.
	X []float64 `json:"x"`
	// Scale is the optimal number of processes/cores.
	Scale int `json:"scale"`
	// ExpectedWallClockDays is the analytic E(T_w) estimate.
	ExpectedWallClockDays float64 `json:"expectedWallClockDays"`
	// OuterIterations is Algorithm 1's iteration count.
	OuterIterations int `json:"outerIterations"`
	// Converged reports whether the μ refresh loop met its tolerance.
	Converged bool `json:"converged"`
}

// Optimize solves the spec under the given policy.
func Optimize(s Spec, pol Policy) (Plan, error) {
	return optimizeObs(s, pol, nil, "")
}

// optimizeObs is Optimize with a telemetry sink: the solver records its
// convergence counters through rec and its outer iterations as spans on
// track (content-derived; see internal/obs). Reached via Sweep's options.
func optimizeObs(s Spec, pol Policy, rec obs.Recorder, track string) (Plan, error) {
	p, err := s.Params()
	if err != nil {
		return Plan{}, err
	}
	ip, err := pol.internal()
	if err != nil {
		return Plan{}, err
	}
	sol, err := ip.Solve(p, core.Options{Obs: rec, ObsLabel: track})
	if err != nil {
		return Plan{}, err
	}
	x := ip.ExpandX(p, sol)
	xr := make([]int, len(x))
	for i, v := range x {
		xr[i] = int(v + 0.5)
		if xr[i] < 1 {
			xr[i] = 1
		}
	}
	return Plan{
		Policy:                pol,
		Intervals:             xr,
		X:                     x,
		Scale:                 sol.Scale(),
		ExpectedWallClockDays: sol.WallClock / failure.SecondsPerDay,
		OuterIterations:       sol.OuterIterations,
		Converged:             sol.Converged,
	}, nil
}

// SimOptions tunes Simulate.
type SimOptions struct {
	Runs         int     `json:"runs"`                   // default 100
	Seed         uint64  `json:"seed"`                   // default 1
	Jitter       float64 `json:"jitter"`                 // overhead jitter ratio, default 0.3
	MaxDays      float64 `json:"maxDays"`                // truncation horizon, default 3000
	WeibullShape float64 `json:"weibullShape,omitempty"` // >0 switches to Weibull interarrivals
}

// Report is the stochastic validation of a plan.
type Report struct {
	Runs              int     `json:"runs"`
	MeanWallClockDays float64 `json:"meanWallClockDays"`
	CI95Days          float64 `json:"ci95Days"`
	ProductiveDays    float64 `json:"productiveDays"`
	CheckpointDays    float64 `json:"checkpointDays"`
	RestartDays       float64 `json:"restartDays"`
	RollbackDays      float64 `json:"rollbackDays"`
	MeanFailures      float64 `json:"meanFailures"`
	Efficiency        float64 `json:"efficiency"`
	TruncatedRuns     int     `json:"truncatedRuns"`
}

// SelectionPlan extends Plan with the chosen level subset.
type SelectionPlan struct {
	Plan
	// EnabledLevels marks which of the spec's levels the optimizer kept;
	// disabled levels get Intervals[i] = 1 (no checkpoints).
	EnabledLevels []bool `json:"enabledLevels"`
}

// OptimizeWithSelection jointly optimizes the checkpoint intervals, the
// execution scale, AND the subset of levels to enable (the level-selection
// extension from the authors' prior work): a level whose failure class is
// rare relative to its cost is dropped and its failures escalate to the
// next level up.
func OptimizeWithSelection(s Spec) (SelectionPlan, error) {
	p, err := s.Params()
	if err != nil {
		return SelectionPlan{}, err
	}
	sel, err := core.SelectLevels(p, core.Options{})
	if err != nil {
		return SelectionPlan{}, err
	}
	xr := make([]int, len(sel.X))
	for i, v := range sel.X {
		xr[i] = int(v + 0.5)
		if xr[i] < 1 {
			xr[i] = 1
		}
	}
	return SelectionPlan{
		Plan: Plan{
			Policy:                MLOptScale,
			Intervals:             xr,
			X:                     sel.X,
			Scale:                 sel.Solution.Scale(),
			ExpectedWallClockDays: sel.Solution.WallClock / failure.SecondsPerDay,
			OuterIterations:       sel.Solution.OuterIterations,
			Converged:             sel.Solution.Converged,
		},
		EnabledLevels: sel.Enabled,
	}, nil
}

// Simulate plays the plan through the stochastic execution simulator.
func Simulate(s Spec, plan Plan, opts SimOptions) (Report, error) {
	return simulateObs(s, plan, opts, nil, "")
}

// simulateObs is Simulate with a telemetry sink: run counters record for
// every repetition and the batch's first run traces checkpoint/recovery
// spans on track (empty disables tracing). Reached via Sweep's options.
func simulateObs(s Spec, plan Plan, opts SimOptions, rec obs.Recorder, track string) (Report, error) {
	p, err := s.Params()
	if err != nil {
		return Report{}, err
	}
	if len(plan.X) != p.L() {
		return Report{}, fmt.Errorf("%w: plan has %d levels, spec %d", ErrSpec, len(plan.X), p.L())
	}
	if opts.Runs <= 0 {
		opts.Runs = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Jitter == 0 {
		opts.Jitter = 0.3
	}
	if opts.MaxDays <= 0 {
		opts.MaxDays = 3000
	}
	cfg := sim.Config{
		Params:       p,
		N:            float64(plan.Scale),
		X:            plan.X,
		JitterRatio:  opts.Jitter,
		MaxWallClock: opts.MaxDays * failure.SecondsPerDay,
		Obs:          rec,
		ObsTrack:     track,
	}
	if opts.WeibullShape > 0 {
		cfg.Dist = failure.Weibull
		cfg.WeibullShape = opts.WeibullShape
	}
	results, err := sim.RunMany(cfg, opts.Runs, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	agg := sim.Summarize(results)
	wcts := make([]float64, len(results))
	for i, r := range results {
		wcts[i] = r.WallClock
	}
	d := failure.SecondsPerDay
	return Report{
		Runs:              agg.Runs,
		MeanWallClockDays: agg.WallClock.Mean / d,
		CI95Days:          ci95(wcts) / d,
		ProductiveDays:    agg.Productive.Mean / d,
		CheckpointDays:    agg.Checkpoint.Mean / d,
		RestartDays:       agg.Restart.Mean / d,
		RollbackDays:      agg.Rollback.Mean / d,
		MeanFailures:      agg.Failures.Mean,
		Efficiency:        model.Efficiency(p.Te, agg.WallClock.Mean, float64(plan.Scale)),
		TruncatedRuns:     agg.Truncated,
	}, nil
}
