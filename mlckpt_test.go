package mlckpt

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestOptimizePaperSpec(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	plan, err := Optimize(spec, MLOptScale)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !plan.Converged {
		t.Error("not converged")
	}
	if plan.Scale <= 0 || plan.Scale >= 1e6 {
		t.Errorf("scale = %d, want interior optimum", plan.Scale)
	}
	if len(plan.Intervals) != 4 {
		t.Fatalf("intervals = %v", plan.Intervals)
	}
	for i := 1; i < 4; i++ {
		if plan.Intervals[i] > plan.Intervals[i-1] {
			t.Errorf("interval counts should not increase with level: %v", plan.Intervals)
		}
	}
	if plan.ExpectedWallClockDays <= 0 {
		t.Errorf("expected wall clock %g", plan.ExpectedWallClockDays)
	}
}

func TestOptimizeAllPolicies(t *testing.T) {
	spec := PaperSpec(3e6, []float64{8, 6, 4, 2})
	wct := map[Policy]float64{}
	for _, pol := range Policies {
		plan, err := Optimize(spec, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		wct[pol] = plan.ExpectedWallClockDays
		if plan.Policy != pol {
			t.Errorf("plan policy %q", plan.Policy)
		}
	}
	if !(wct[MLOptScale] < wct[MLOriScale]) {
		t.Errorf("ML(opt) %g !< ML(ori) %g", wct[MLOptScale], wct[MLOriScale])
	}
}

func TestOptimizeUnknownPolicy(t *testing.T) {
	spec := PaperSpec(3e6, []float64{8, 6, 4, 2})
	if _, err := Optimize(spec, Policy("bogus")); !errors.Is(err, ErrSpec) {
		t.Errorf("err = %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero workload", func(s *Spec) { s.TeCoreDays = 0 }},
		{"no levels", func(s *Spec) { s.Levels = nil }},
		{"rate mismatch", func(s *Spec) { s.FailuresPerDay = []float64{1} }},
		{"bad speedup kind", func(s *Spec) { s.Speedup.Kind = "cubic" }},
		{"zero ideal scale", func(s *Spec) { s.Speedup.IdealScale = 0 }},
		{"zero kappa", func(s *Spec) { s.Speedup.Kappa = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := PaperSpec(3e6, []float64{8, 6, 4, 2})
			tc.mut(&spec)
			if _, err := spec.Params(); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

func TestSpeedupKinds(t *testing.T) {
	for _, kind := range []string{"quadratic", "linear", "amdahl", "gustafson"} {
		s := SpeedupSpec{Kind: kind, Kappa: 0.5, IdealScale: 1e5, SerialFraction: 0.01}
		m, err := s.Model()
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if m.Speedup(100) <= 0 {
			t.Errorf("%s: non-positive speedup", kind)
		}
	}
	// Empty kind defaults to quadratic.
	if _, err := (SpeedupSpec{Kappa: 0.5, IdealScale: 1e5}).Model(); err != nil {
		t.Errorf("default kind: %v", err)
	}
}

func TestRecoveryDefaultsToHalfCheckpoint(t *testing.T) {
	spec := PaperSpec(3e6, []float64{8, 6, 4, 2})
	p, err := spec.Params()
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Levels {
		c := p.Levels[i].Checkpoint.At(1e5)
		r := p.Levels[i].Recovery.At(1e5)
		if r != c/2 {
			t.Errorf("level %d: recovery %g, want %g", i+1, r, c/2)
		}
	}
	// Explicit recovery respected.
	spec.Levels[0].RecoveryConst = 7
	p, err = spec.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels[0].Recovery.At(1e5) != 7 {
		t.Errorf("explicit recovery ignored")
	}
}

func TestSimulatePlan(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	plan, err := Optimize(spec, MLOptScale)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(spec, plan, SimOptions{Runs: 20, Seed: 7})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if rep.Runs != 20 {
		t.Errorf("runs = %d", rep.Runs)
	}
	// The simulated mean tracks the analytic estimate from above: the
	// model is first-order (one failure per interval, no failures during
	// overhead windows), so the simulator's compounding adds tens of
	// percent at these high failure rates but never wins by much.
	rel := (rep.MeanWallClockDays - plan.ExpectedWallClockDays) / plan.ExpectedWallClockDays
	if rel < -0.1 || rel > 0.5 {
		t.Errorf("sim %g days vs model %g days (%.1f%%)",
			rep.MeanWallClockDays, plan.ExpectedWallClockDays, rel*100)
	}
	sum := rep.ProductiveDays + rep.CheckpointDays + rep.RestartDays + rep.RollbackDays
	if rel := (sum - rep.MeanWallClockDays) / rep.MeanWallClockDays; rel > 0.001 || rel < -0.001 {
		t.Errorf("portions %g != wall clock %g", sum, rep.MeanWallClockDays)
	}
	if rep.Efficiency <= 0 || rep.Efficiency >= 1 {
		t.Errorf("efficiency = %g", rep.Efficiency)
	}
}

func TestSimulateRejectsMismatchedPlan(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	plan := Plan{X: []float64{10}, Scale: 1000}
	if _, err := Simulate(spec, plan, SimOptions{Runs: 2}); !errors.Is(err, ErrSpec) {
		t.Errorf("err = %v", err)
	}
}

func TestSimulateWeibullOption(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	plan, err := Optimize(spec, MLOptScale)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(spec, plan, SimOptions{Runs: 5, WeibullShape: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanFailures <= 0 {
		t.Error("no failures under Weibull")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	p1, err := spec.Params()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := back.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Te != p2.Te || p1.L() != p2.L() {
		t.Error("JSON round trip changed the problem")
	}
}
