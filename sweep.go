package mlckpt

import (
	"fmt"
	"strings"

	"mlckpt/internal/obs"
	"mlckpt/internal/stats"
	"mlckpt/internal/sweep"
)

// trackTag shortens a cache key ("scope:hexdigest") to its last 8 hex
// digits for trace-track labels, falling back to the job name when the
// spec could not be keyed.
func trackTag(key, name string) string {
	if key == "" {
		return name
	}
	if i := strings.LastIndexByte(key, ':'); i >= 0 {
		key = key[i+1:]
	}
	if len(key) > 8 {
		key = key[len(key)-8:]
	}
	return key
}

// SweepJob is one cell of a parameter sweep: a problem, a policy, and an
// optional simulation of the optimized plan.
type SweepJob struct {
	// Name labels the job in progress reports and outcomes. Optional.
	Name string `json:"name,omitempty"`
	Spec Spec   `json:"spec"`
	// Policy defaults to MLOptScale when empty.
	Policy Policy `json:"policy,omitempty"`
	// Sim, when non-nil, validates the optimized plan through the
	// stochastic simulator. A zero Sim.Seed gets a deterministic per-job
	// seed derived from SweepOptions.RootSeed and the job's content, so
	// sweep results never depend on worker count or job order.
	Sim *SimOptions `json:"sim,omitempty"`
}

// SweepOutcome is the result of one SweepJob.
type SweepOutcome struct {
	Name   string `json:"name,omitempty"`
	Policy Policy `json:"policy"`
	Plan   Plan   `json:"plan"`
	// Report is the simulation result; nil when the job had no Sim stage
	// or the job failed.
	Report *Report `json:"report,omitempty"`
	// Err reports a per-job failure (invalid spec, diverged solve). Other
	// jobs in the sweep are unaffected.
	Err error `json:"-"`
	// CacheHit reports that the optimization was answered by the sweep's
	// memoization cache rather than recomputed. Execution metadata: it
	// depends on scheduling and is excluded from determinism guarantees.
	CacheHit bool `json:"cacheHit,omitempty"`
}

// SweepOptions tunes Sweep.
type SweepOptions struct {
	// Workers bounds the worker pool; <= 0 uses all CPUs. The setting
	// changes wall-clock time only, never results.
	Workers int `json:"workers,omitempty"`
	// RootSeed feeds per-job seed derivation for jobs whose Sim.Seed is
	// zero; 0 defaults to 1 (matching SimOptions' default).
	RootSeed uint64 `json:"rootSeed,omitempty"`
	// Progress, when non-nil, is called after each finished job.
	Progress func(done, total int, name string) `json:"-"`
	// Obs receives the sweep's telemetry: engine and solver counters plus
	// per-job trace tracks labeled by job content, deterministic for every
	// Workers setting. In-module callers (the CLIs) pass an obs.Collector;
	// external importers cannot construct a Recorder and leave it nil,
	// which disables telemetry entirely.
	Obs obs.Recorder `json:"-"`
	// Clock supplies wall-clock seconds for volatile latency metrics (the
	// CLIs pass obs.WallClock); nil disables them.
	Clock func() float64 `json:"-"`
}

// Sweep evaluates a grid of optimization (and optionally simulation) jobs
// concurrently. It is the batch counterpart of Optimize+Simulate:
//
//   - Jobs with equal (Spec, Policy) share a single Algorithm 1 solve via
//     a content-addressed cache — sweeping simulation knobs over a fixed
//     problem pays for the solve once.
//   - Results are bit-identical for every Workers setting: per-job RNG
//     streams are derived from RootSeed and the job's content, never from
//     scheduling.
//   - Outcomes are returned in job order, and a failing job reports its
//     error in its outcome without aborting the rest of the grid.
func Sweep(jobs []SweepJob, opts SweepOptions) []SweepOutcome {
	root := opts.RootSeed
	if root == 0 {
		root = 1
	}
	outcomes := make([]SweepOutcome, len(jobs))
	engineJobs := make([]sweep.Job, len(jobs))
	for i, job := range jobs {
		job := job
		if job.Policy == "" {
			job.Policy = MLOptScale
		}
		name := job.Name
		if name == "" {
			name = fmt.Sprintf("job-%d/%s", i, job.Policy)
		}
		outcomes[i] = SweepOutcome{Name: name, Policy: job.Policy}

		// Non-marshalable specs (NaN workloads etc.) cannot be cached or
		// seeded by content; solve uncached and derive the seed from the
		// job name instead. Optimize will reject the spec with a proper
		// error.
		solveKey, keyErr := sweep.Key("mlckpt.Optimize", job.Spec, string(job.Policy))
		var postKey string
		var seed uint64
		if job.Sim != nil {
			seed = job.Sim.Seed
			if keyErr == nil {
				postKey, keyErr = sweep.Key("mlckpt.Simulate", job.Spec, string(job.Policy), *job.Sim)
			}
			if seed == 0 {
				if keyErr == nil {
					seed = stats.DeriveSeed(root, postKey)
				} else {
					seed = stats.DeriveSeed(root, name)
				}
			}
		}
		if keyErr != nil {
			solveKey, postKey = "", ""
		}

		// Trace tracks derive from the job's cache keys (equal problems →
		// equal labels, whichever duplicate computes), falling back to the
		// job name for non-marshalable specs — still a pure function of the
		// job list, never of scheduling.
		solveTrack := "opt/" + trackTag(solveKey, name)
		simTrack := "sim/" + trackTag(postKey, name)
		ej := sweep.Job{
			Name:     name,
			SolveKey: solveKey,
			Solve: func() (any, error) {
				plan, err := optimizeObs(job.Spec, job.Policy, opts.Obs, solveTrack)
				if err != nil {
					return nil, err
				}
				return plan, nil
			},
		}
		if job.Sim != nil {
			simOpts := *job.Sim
			simOpts.Seed = seed
			ej.PostKey = postKey
			ej.Seed = seed
			ej.Post = func(solved any, seed uint64) (any, error) {
				simOpts.Seed = seed
				report, err := simulateObs(job.Spec, solved.(Plan), simOpts, opts.Obs, simTrack)
				if err != nil {
					return nil, err
				}
				return report, nil
			}
		}
		engineJobs[i] = ej
	}

	outs := sweep.Run(engineJobs, sweep.Options{
		Workers:  opts.Workers,
		RootSeed: root,
		Progress: opts.Progress,
		Obs:      opts.Obs,
		Clock:    opts.Clock,
	})
	for i, o := range outs {
		if o.Err != nil {
			outcomes[i].Err = o.Err
			continue
		}
		outcomes[i].Plan = copyPlan(o.Solved.(Plan))
		outcomes[i].CacheHit = o.SolveCached
		if o.Result != nil {
			report := o.Result.(Report)
			outcomes[i].Report = &report
		}
	}
	return outcomes
}

// copyPlan deep-copies the slices of a cached plan so callers mutating
// one outcome cannot corrupt the others sharing the cache entry.
func copyPlan(p Plan) Plan {
	p.Intervals = append([]int(nil), p.Intervals...)
	p.X = append([]float64(nil), p.X...)
	return p
}
